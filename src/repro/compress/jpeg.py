"""Baseline-JPEG-style lossy image codec, implemented from scratch.

The paper's workhorse: "When lossy compression is acceptable, JPEG is the
choice because of the excellent compression it can achieve."  This codec
follows the baseline JPEG structure — RGB→YCbCr, 4:2:0 chroma subsampling,
8×8 DCT, quality-scaled quantization, zigzag scan, DC prediction, AC
zero-run coding with ZRL/EOB, canonical Huffman entropy coding with
amplitude bits — in our own container format (it is not bit-compatible with
ITU T.81; see DESIGN.md §7).

Two stream versions share the container:

- **v1** (legacy): DC/AC code words and amplitude bits interleaved in one
  stream per plane; the decoder walks it token by token in Python.
- **v2** (default): per plane, the DC size symbols and the AC run/size
  symbols are entropy-coded as *interleaved Huffman lanes*
  (:func:`repro.compress.huffman.encode_interleaved`) and the amplitude
  bits ride in a third raw bit stream.  Amplitude bit-lengths are implied
  by the decoded symbols, so after the lane decode the amplitudes, DC
  prediction, zero-run expansion, and coefficient placement are all single
  vectorized passes — no per-token Python loop anywhere on the decode path.

Both versions decode to byte-identical images; the encoder picks the
version via ``stream_version`` and the decoder dispatches on the header.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import Codec, CodecError, register_codec
from repro.compress.bitio import pack_values, sliding_code_windows, unpack_bits
from repro.compress.color import (
    downsample_420,
    pad_to_multiple,
    rgb_to_ycbcr_planes,
    ycbcr_420_planes_to_rgb,
    ycbcr_planes_to_rgb,
)
from repro.compress.context import CodecContext
from repro.compress.dct import (
    BLOCK,
    blockize_into,
    dct2_blocks,
    dct2_strips,
    partial_idct_blocks,
    unblockize,
    zigzag_indices,
)
from repro.compress.huffman import (
    HuffmanCode,
    decode_interleaved,
    interleave_entries,
    interleave_header,
)

__all__ = ["JPEGCodec"]

_MAGIC = b"RJPG"
_V1 = 1
_V2 = 2
_ZRL = 0xF0  # AC symbol: run of 16 zeros
_EOB = 0x00  # AC symbol: end of block
_WINDOW = 16  # decoder bit-peek width (>= max code length and amp size)

_ZIGZAG = zigzag_indices()
_UNZIGZAG = np.argsort(_ZIGZAG)


_POW2 = 1 << np.arange(32, dtype=np.int64)

# Grow-only constant widths array: metadata bytes enter the bit sink as
# width-8 entries, and slicing a shared constant beats allocating a fresh
# np.full per header section.
_EIGHTS = np.full(1 << 12, 8, dtype=np.int64)


def _meta_entries(raw: bytes) -> tuple[np.ndarray, np.ndarray]:
    """``(values, widths)`` bit-sink entries for literal metadata bytes."""
    global _EIGHTS
    if _EIGHTS.size < len(raw):
        _EIGHTS = np.full(
            max(len(raw), 2 * _EIGHTS.size), 8, dtype=np.int64
        )
    return np.frombuffer(raw, dtype=np.uint8), _EIGHTS[: len(raw)]


#: grow-only 0, 1, 2, ... shared by the block-index arithmetic below
_IOTA = np.arange(1 << 12, dtype=np.int64)


def _iota(k: int) -> np.ndarray:
    global _IOTA
    if _IOTA.size < k:
        _IOTA = np.arange(max(k, 2 * _IOTA.size), dtype=np.int64)
    return _IOTA[:k]


def _sizes(values: np.ndarray) -> np.ndarray:
    """JPEG size category: bits needed for |v| (0 for v == 0).

    ``bit_length(|v|)`` via binary search over a powers-of-two table —
    exact integer arithmetic (equal to ``ceil(log2(|v| + 1))``) with no
    float round-trip.
    """
    return np.searchsorted(_POW2, np.abs(values), side="right").astype(
        np.int64
    )


def _amplitude_bits(values: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """One's-complement-style amplitude encoding of signed values."""
    return np.where(values >= 0, values, values + (1 << sizes) - 1).astype(
        np.uint32
    )


def _amplitude_decode(amp: int, size: int) -> int:
    if size == 0:
        return 0
    if amp < (1 << (size - 1)):
        return amp - (1 << size) + 1
    return amp


def _amplitude_decode_vec(amp: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_amplitude_decode` (``sizes == 0`` maps to 0)."""
    amp = amp.astype(np.int64)
    sizes = sizes.astype(np.int64)
    half = np.left_shift(1, np.maximum(sizes, 1) - 1)
    neg = amp < half
    vals = np.where(neg, amp - np.left_shift(1, sizes) + 1, amp)
    return np.where(sizes == 0, 0, vals)


def _extract_amplitudes(
    payload, nbits: int, sizes: np.ndarray
) -> np.ndarray:
    """Pull every variable-length amplitude field out of one raw bit stream.

    ``sizes[i]`` bits per field, concatenated MSB-first — the inverse of
    ``pack_values(amps, sizes)``.  Each field (at most 16 bits, so spanning
    at most 3 bytes) is sliced out of a big-endian 32-bit word gathered at
    its start byte — one vectorized pass over the tokens, never over the
    individual bits.
    """
    sizes = sizes.astype(np.int64)
    ends = np.cumsum(sizes)
    total = int(ends[-1]) if sizes.size else 0
    if total != nbits:
        raise CodecError("jpeg: amplitude bit count mismatch")
    if total == 0:
        return np.zeros(sizes.size, dtype=np.int64)
    buf = np.frombuffer(payload, dtype=np.uint8)
    if buf.size * 8 < nbits:
        raise CodecError("jpeg: amplitude bit count exceeds payload")
    padded = np.zeros(buf.size + 3, dtype=np.uint32)
    padded[: buf.size] = buf
    words = (
        (padded[:-3] << np.uint32(24))
        | (padded[1:-2] << np.uint32(16))
        | (padded[2:-1] << np.uint32(8))
        | padded[3:]
    )
    starts = ends - sizes
    raw = words.take(starts >> 3, mode="clip")
    raw >>= (np.uint32(32) - (starts & 7) - sizes).astype(np.uint32)
    raw &= ((np.uint32(1) << sizes.astype(np.uint32)) - np.uint32(1)).astype(
        np.uint32
    )
    return raw.astype(np.int64)


class _PlaneTokens:
    """Interleaved token stream of one plane, ready for bit packing.

    ``context`` selects the Huffman table (0 = DC, 1 = AC) per token;
    ``symbol`` is the table index; ``amp``/``amp_size`` the raw bits that
    follow the code word.
    """

    def __init__(self, zz: np.ndarray):
        n = zz.shape[0]
        dc = zz[:, 0].astype(np.int64)
        diffs = np.diff(dc, prepend=0)
        dc_sizes = _sizes(diffs)
        ac = zz[:, 1:].astype(np.int64)

        nzb, nzp = np.nonzero(ac)
        vals = ac[nzb, nzp]
        # zero-run before each nonzero, within its block
        prev_pos = np.full(nzb.size, -1, dtype=np.int64)
        if nzb.size > 1:
            same = nzb[1:] == nzb[:-1]
            prev_pos[1:] = np.where(same, nzp[:-1], -1)
        run = nzp - prev_pos - 1
        nzrl = run >> 4
        rem = run & 0xF
        val_sizes = _sizes(vals)
        if val_sizes.size and val_sizes.max() > 15:
            raise CodecError("jpeg: AC coefficient exceeds amplitude range")

        total_zrl = int(nzrl.sum())
        # Stream order inside a block: DC (seq -1), then for each nonzero at
        # zigzag position p: its ZRL tokens (seq 4p..4p+2, run < 63 implies
        # at most 3) then the value token (seq 4p+3); EOB last (seq 256).
        zrl_owner = np.repeat(np.arange(nzb.size), nzrl)
        zrl_intra = np.arange(total_zrl) - np.repeat(
            np.cumsum(nzrl) - nzrl, nzrl
        )
        block = np.concatenate(
            [np.arange(n), nzb[zrl_owner], nzb, np.arange(n)]
        )
        seq = np.concatenate(
            [
                np.full(n, -1, dtype=np.int64),
                4 * nzp[zrl_owner] + zrl_intra,
                4 * nzp + 3,
                np.full(n, 4 * 64, dtype=np.int64),
            ]
        )
        context = np.concatenate(
            [
                np.zeros(n, dtype=np.int64),
                np.ones(total_zrl + nzb.size + n, dtype=np.int64),
            ]
        )
        symbol = np.concatenate(
            [
                dc_sizes,
                np.full(total_zrl, _ZRL, dtype=np.int64),
                (rem << 4) | val_sizes,
                np.full(n, _EOB, dtype=np.int64),
            ]
        )
        amp_size = np.concatenate(
            [
                dc_sizes,
                np.zeros(total_zrl, dtype=np.int64),
                val_sizes,
                np.zeros(n, dtype=np.int64),
            ]
        )
        amp = np.concatenate(
            [
                _amplitude_bits(diffs, dc_sizes),
                np.zeros(total_zrl, dtype=np.uint64),
                _amplitude_bits(vals, val_sizes),
                np.zeros(n, dtype=np.uint64),
            ]
        )
        order = np.lexsort((seq, block))
        self.context = context[order]
        self.symbol = symbol[order]
        self.amp_size = amp_size[order]
        self.amp = amp[order]

    def pack(
        self, dc_code: HuffmanCode, ac_code: HuffmanCode
    ) -> tuple[bytes, int]:
        dc_codes = np.zeros(256, dtype=np.uint64)
        dc_lens = np.zeros(256, dtype=np.int64)
        dc_codes[: dc_code.codes.size] = dc_code.codes
        dc_lens[: dc_code.lengths.size] = dc_code.lengths
        is_dc = self.context == 0
        codes = np.where(
            is_dc,
            dc_codes[self.symbol],
            ac_code.codes.astype(np.uint64)[self.symbol],
        )
        lens = np.where(
            is_dc, dc_lens[self.symbol], ac_code.lengths[self.symbol]
        )
        n = self.symbol.size
        values = np.empty(2 * n, dtype=np.uint64)
        lengths = np.empty(2 * n, dtype=np.int64)
        values[0::2] = codes
        values[1::2] = self.amp
        lengths[0::2] = lens
        lengths[1::2] = self.amp_size
        return pack_values(values, lengths)

    def frequencies(self) -> tuple[np.ndarray, np.ndarray]:
        is_dc = self.context == 0
        dc_freq = np.bincount(self.symbol[is_dc], minlength=16)
        ac_freq = np.bincount(self.symbol[~is_dc], minlength=256)
        return dc_freq, ac_freq


class JPEGCodec(Codec):
    """Baseline-style JPEG codec.

    Parameters
    ----------
    quality:
        1..100, IJG convention (50 = reference tables; the paper's
        visually-lossless regime is ~75–90).
    subsample:
        4:2:0 chroma subsampling on/off (on by default, as in baseline
        encoders).
    fast_decode:
        0 = exact decode; 1/2/3 = libjpeg-style scaled decoding with a
        4x4 / 2x2 / 1x1 inverse DCT — "the decoder can also trade off
        decoding speed against image quality, by using fast but
        inaccurate approximations to the required calculations" (§4.2).
        Output keeps the full image dimensions (nearest upsample), so a
        weak display client can cheaply keep up with the frame stream.
    stream_version:
        2 (default) = interleaved-lane entropy streams with the
        vectorized decoder; 1 = the legacy per-token layout.  Both decode
        regardless of this setting.
    lanes:
        Explicit lane count ``K`` for the v2 interleaved symbol streams
        (1..255); ``None`` (default) sizes lanes from the stream length
        exactly as before.  Any value decodes everywhere — ``K`` travels
        in the blob header.
    context:
        A shared :class:`~repro.compress.context.CodecContext`; a private
        one is created when omitted, so tables and scratch persist across
        the frames encoded or decoded by this instance either way.
    """

    name = "jpeg"
    lossless = False

    def __init__(
        self,
        quality: int = 75,
        subsample: bool = True,
        fast_decode: int = 0,
        stream_version: int = _V2,
        lanes: int | None = None,
        context: CodecContext | None = None,
    ):
        if fast_decode not in (0, 1, 2, 3):
            raise ValueError("fast_decode must be 0, 1, 2, or 3")
        if stream_version not in (_V1, _V2):
            raise ValueError("stream_version must be 1 or 2")
        if lanes is not None and not 1 <= lanes <= 255:
            raise ValueError("lanes must be in 1..255")
        self.quality = quality
        self.subsample = subsample
        self.fast_decode = fast_decode
        self.stream_version = stream_version
        self.lanes = lanes
        self._ctx = context if context is not None else CodecContext()
        self._luma_q, self._chroma_q = self._ctx.quant_tables(quality)
        # Frame-geometry-keyed encode tables (strip->scan maps, tiled
        # reciprocal quant rows).  Pure functions of (dims, quality), so
        # they survive use_context() and never need invalidation.
        self._geom_cache: dict[tuple, np.ndarray] = {}

    def use_context(self, context: CodecContext) -> None:
        """Adopt a shared cross-codec context (e.g. one per connection)."""
        self._ctx = context
        self._luma_q, self._chroma_q = context.quant_tables(self.quality)

    @property
    def _idct_points(self) -> int:
        return BLOCK >> self.fast_decode

    # The byte interface is intentionally unsupported: JPEG is meaningful
    # only on images.  The display daemon uses encode_image/decode_image.
    def encode(self, data: bytes) -> bytes:
        raise CodecError("jpeg: byte-stream interface unsupported; use encode_image")

    def decode(self, payload: bytes) -> bytes:
        raise CodecError("jpeg: byte-stream interface unsupported; use decode_image")

    # -- encoding ----------------------------------------------------------

    def encode_image(self, image: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(image)
        if arr.dtype != np.uint8:
            raise CodecError("jpeg: image must be uint8")
        if arr.ndim == 3 and arr.shape[2] == 1:
            arr = arr[..., 0]
        gray = arr.ndim == 2
        if not gray and (arr.ndim != 3 or arr.shape[2] != 3):
            raise CodecError(f"jpeg: bad image shape {arr.shape}")

        h, w = arr.shape[:2]
        out = [
            _MAGIC,
            struct.pack(
                "<BIIBBB",
                self.stream_version,
                h,
                w,
                1 if gray else 3,
                self.quality,
                1 if self.subsample else 0,
            ),
        ]
        ctx = self._ctx
        if gray:
            planes = [arr.astype(np.float32)]
            qts = [self._luma_q]
        else:
            y, cb, cr = rgb_to_ycbcr_planes(
                arr,
                out=ctx.scratch("enc_ycc", (3, h, w), np.float32),
                tmp=ctx.scratch("enc_ycc_tmp", (4, h, w), np.float32),
            )
            if self.subsample:
                ch, cw = (h + 1) // 2, (w + 1) // 2
                cb = downsample_420(
                    cb, out=ctx.scratch("enc_cb", (ch, cw), np.float32)
                )
                cr = downsample_420(
                    cr, out=ctx.scratch("enc_cr", (ch, cw), np.float32)
                )
            planes = [y, cb, cr]
            qts = [self._luma_q, self._chroma_q, self._chroma_q]

        # Level shift → strip-layout DCT → quantize, every plane in slices
        # of one flat coefficient buffer.  The per-block arithmetic is
        # identical to a blockize/batched-matmul chain, but blocks never
        # leave plane layout: the level shift doubles as the copy into the
        # scratch buffer, both DCT passes are plain GEMMs over strip
        # views (see dct2_strips), and quantization broadcasts the table
        # over the (bh, 8, bw, 8) view.  Only the per-plane entropy
        # streams are separated afterwards.
        padded = [pad_to_multiple(p, BLOCK) for p in planes]
        dims = [(p.shape[0] // BLOCK, p.shape[1] // BLOCK) for p in padded]
        ns = [bh * bw for bh, bw in dims]
        total = sum(ns)
        nblk = BLOCK * BLOCK
        buf = ctx.scratch("enc_coeffs", (total * nblk,), np.float32)
        tmp = ctx.scratch("enc_dct_tmp", (total * nblk,), np.float32)
        o = 0
        for p, (bh, bw), nn, qt in zip(padded, dims, ns, qts):
            h8, w8 = bh * BLOCK, bw * BLOCK
            pb = buf[o : o + nn * nblk].reshape(h8, w8)
            pt = tmp[o : o + nn * nblk].reshape(h8, w8)
            np.subtract(p, np.float32(128.0), out=pb)
            dct2_strips(pb, out=pb, tmp=pt)
            # multiply by the reciprocal table tiled across one strip row:
            # a whole-plane float divide is measurably slower than the
            # multiply, and the (8, w8) tile keeps the broadcast's inner
            # axis contiguous where the (1, 8, 1, 8) table view forces an
            # 8-element inner loop.
            q3 = pb.reshape(bh, BLOCK, w8)
            np.multiply(
                q3, self._quant_tile(qt is self._luma_q, qt, bw)[None], out=q3
            )
            o += nn * nblk
        np.rint(buf, out=buf)

        if self.stream_version == _V1:
            # v1 tokenization consumes whole zigzag rows: rearrange each
            # plane into natural (nblocks, 64) rows, then reorder them.
            # The v2 path below skips both passes — it maps only the
            # sparse nonzeros out of the strip layout.
            o = 0
            for (bh, bw), nn in zip(dims, ns):
                size = nn * nblk
                nat = tmp[o : o + size].reshape(nn, nblk)
                np.copyto(
                    nat.reshape(bh, bw, BLOCK, BLOCK),
                    buf[o : o + size]
                    .reshape(bh, BLOCK, bw, BLOCK)
                    .transpose(0, 2, 1, 3),
                )
                zz = buf[o : o + size].reshape(nn, nblk)
                np.take(nat, _ZIGZAG, axis=1, out=zz)
                out.append(self._encode_plane_v1(zz, bh, bw))
                o += size
        else:
            vparts: list[np.ndarray] = []
            wparts: list[np.ndarray] = []
            self._collect_planes_v2(buf, dims, vparts, wparts)
            out.append(self._pack_frame(vparts, wparts))
        return b"".join(out)

    def _pack_frame(
        self, vparts: list[np.ndarray], wparts: list[np.ndarray]
    ) -> bytes:
        """Pack every collected v2 plane in one bit-sink pass.

        :meth:`_collect_plane_v2` ends each plane (and each section
        within it) on a byte boundary, so concatenating all entries and
        expanding them in a single pass produces exactly the bytes the
        per-plane joins would.
        """
        sink = self._ctx.bitsink("jpeg_frame")
        sink.write(np.concatenate(vparts), np.concatenate(wparts))
        buf, _ = sink.payload()
        return buf

    def _encode_plane_v1(self, zz: np.ndarray, bh: int, bw: int) -> bytes:
        tokens = _PlaneTokens(zz.astype(np.int32))
        dc_freq, ac_freq = tokens.frequencies()
        dc_code = self._ctx.code_for_freqs(dc_freq)
        ac_code = self._ctx.code_for_freqs(ac_freq)
        payload, nbits = tokens.pack(dc_code, ac_code)
        parts = [
            struct.pack("<IIQ", bh, bw, nbits),
            dc_code.to_bytes(),
            ac_code.to_bytes(),
            struct.pack("<I", len(payload)),
            payload,
        ]
        return b"".join(parts)

    def _quant_tile(self, luma: bool, qt: np.ndarray, bw: int) -> np.ndarray:
        """Reciprocal quant table tiled to one strip row, ``(8, bw * 8)``."""
        key = ("qtile", luma, bw)
        tile = self._geom_cache.get(key)
        if tile is None:
            tile = np.tile(np.float32(1.0) / qt, (1, bw))
            self._geom_cache[key] = tile
        return tile

    def _scan_map(
        self, dims: list[tuple[int, int]], ns: list[int], offs: np.ndarray
    ) -> np.ndarray:
        """Flat strip-layout index → global scan position, all planes.

        Entry ``f`` of the concatenated coefficient stack maps to
        ``block_index * 64 + zigzag_position`` of that coefficient.  A
        pure function of the block geometry, so successive frames of one
        stream gather through the same cached table instead of redoing
        the divmod/zigzag arithmetic per frame.
        """
        key = tuple(dims)
        m = self._geom_cache.get(key)
        if m is None:
            parts = []
            for p, (bh, bw) in enumerate(dims):
                w8 = bw * BLOCK
                f = _iota(ns[p] * 64)
                r = f // w8
                c = f - r * w8
                blk = (r >> 3) * bw + (c >> 3)
                natp = ((r & 7) << 3) | (c & 7)
                parts.append(((offs[p] + blk) << 6) + _UNZIGZAG[natp])
            m = np.concatenate(parts)
            self._geom_cache[key] = m
        return m

    def _collect_planes_v2(
        self,
        buf: np.ndarray,
        dims: list[tuple[int, int]],
        vparts: list[np.ndarray],
        wparts: list[np.ndarray],
    ) -> None:
        """Direct vectorized v2 encode of every plane in one global pass.

        The v2 container separates DC symbols, AC symbols and amplitude
        bits anyway, so instead of building the v1-ordered token stream
        (:class:`_PlaneTokens`'s lexsort) and filtering it apart again,
        the three streams are constructed directly: value/ZRL/EOB symbol
        positions are computed with cumulative sums over the nonzero
        coefficients and scattered into one flat symbol array.  Output
        bytes are identical to the filtering path.

        ``buf`` holds every plane's quantized coefficients back to back
        in *strip layout* (``dims`` gives each plane's block grid; plane
        element ``[i*8+y, j*8+x]`` is coefficient ``(y, x)`` of block
        ``(i, j)`` — see :func:`~repro.compress.dct.dct2_strips`).
        Tokenization runs once over the whole stack — one nonzero scan,
        one scan-order sort, one run/size pass — because every quantity
        is per-block and block indices never cross plane boundaries;
        only DC prediction needs a fix-up (it restarts at each plane's
        first block).  Per-plane symbol and amplitude streams fall out
        as slices at the plane block boundaries, and only the per-plane
        Huffman tables, lane interleave and container metadata remain in
        the small per-plane loop below.  Only the sparse nonzeros are
        mapped from strip position to zigzag scan position (and argsorted
        into scan order — positions are unique, so the unstable sort is
        deterministic), which skips the dense blockize + 64-wide zigzag
        ``take`` over the whole coefficient tensor entirely.
        """
        ns = [bh * bw for bh, bw in dims]
        total = sum(ns)
        offs = np.cumsum([0] + ns)
        # DC coefficients live at plane position (i*8, j*8) in strip
        # layout: gather them per plane through a strided view, then zero
        # them in place (buf is context-owned scratch, consumed by this
        # pass) so the flat nonzero scan below sees only AC coefficients.
        dc = np.empty(total, dtype=np.int64)
        o = 0
        for p, (bh, bw) in enumerate(dims):
            pb = buf[o : o + ns[p] * 64].reshape(bh * BLOCK, bw * BLOCK)
            dcv = pb[::BLOCK, ::BLOCK]
            np.copyto(
                dc[offs[p] : offs[p + 1]].reshape(bh, bw),
                dcv,
                casting="unsafe",
            )
            dcv[...] = 0.0
            o += ns[p] * 64
        # np.diff(dc, prepend=0) minus its Python plumbing
        diffs = np.empty(total, dtype=np.int64)
        diffs[0] = dc[0]
        np.subtract(dc[1:], dc[:-1], out=diffs[1:])
        for o in offs[1:-1]:
            diffs[o] = dc[o]  # DC prediction restarts on each plane
        dc_sizes = _sizes(diffs)

        # AC nonzeros via one contiguous flat scan over all planes.  The
        # float comparison goes through a bool scratch first: nonzero on
        # a bool array takes a fast path that nonzero-on-float misses by
        # an order of magnitude.
        nzmask = self._ctx.scratch("enc_nzmask", (buf.size,), np.bool_)
        np.not_equal(buf, 0, out=nzmask)
        idx = np.flatnonzero(nzmask)
        # Map each flat strip-layout index to its global scan position
        # (block_index * 64 + zigzag position): one sparse gather through
        # the geometry-cached translation table.
        pos = self._scan_map(dims, ns, offs)[idx]
        order = np.argsort(pos)
        spos = pos[order]
        nzb = spos >> 6
        nzp = (spos & 63) - 1
        vals = buf[idx].astype(np.int64)[order]
        # zero-run before each nonzero, within its block
        prev_pos = np.full(nzb.size, -1, dtype=np.int64)
        if nzb.size > 1:
            same = nzb[1:] == nzb[:-1]
            prev_pos[1:] = np.where(same, nzp[:-1], -1)
        run = nzp - prev_pos - 1
        nzrl = run >> 4  # ZRL (16-zero) tokens preceding the value token
        rem = run & 0xF
        val_sizes = _sizes(vals)
        if val_sizes.size and val_sizes.max() > 15:
            raise CodecError("jpeg: AC coefficient exceeds amplitude range")

        # AC stream positions: per nonzero, its ZRLs then its value token;
        # one EOB closes each block.  A nonzero's value token sits after
        # all tokens of earlier nonzeros (cumsum), its own ZRLs, and one
        # EOB per earlier block; block b's EOB ends its token span.
        tok = nzrl + 1
        csum = np.cumsum(tok)
        # ends[b] = tokens of all nonzeros in blocks <= b, plus one EOB per
        # block <= b.  nzb is sorted, so the first part is csum at the last
        # nonzero belonging to a block <= b — a searchsorted, which beats
        # the bincount(weights=...)/cumsum chain (weighted bincount
        # accumulates in float64).
        ends = np.searchsorted(nzb, _iota(total), side="right")
        if nzb.size:
            csum0 = np.empty(csum.size + 1, dtype=np.int64)
            csum0[0] = 0
            csum0[1:] = csum
            ends = csum0[ends]
        ends += _iota(total + 1)[1:]
        ac_syms = np.full(int(ends[-1]), _ZRL, dtype=np.int64)
        if nzb.size:
            ac_syms[csum - 1 + nzb] = (rem << 4) | val_sizes
        ac_syms[ends - 1] = _EOB

        # Whole-stack amplitude streams; per-plane slices come below.
        damp = _amplitude_bits(diffs, dc_sizes)
        vamp = _amplitude_bits(vals, val_sizes)
        # nonzero-stream boundaries per plane (nzb is sorted)
        vbound = np.searchsorted(nzb, offs, side="left")

        # Each plane's container — headers, Huffman tables, DC lanes,
        # AC lanes and the raw amplitude stream (DC diffs then AC values)
        # — is emitted as one (value, width) entry sequence: metadata
        # bytes ride along as width-8 entries between the code entries.
        # Every lane is pad-aligned by interleave_entries and the
        # amplitude section gets an explicit final pad entry, so each
        # section starts (and each plane ends) on a byte boundary, which
        # is what lets encode_image pack all planes in ONE expand/packbits
        # pass.  (No alphabet validation here: both codes were just built
        # from these very symbols' frequencies, so every symbol has a
        # code by construction.)
        tstart = 0
        for p, (bh, bw) in enumerate(dims):
            lo, hi = int(offs[p]), int(offs[p + 1])
            tend = int(ends[hi - 1])
            vlo, vhi = int(vbound[p]), int(vbound[p + 1])
            dsz = dc_sizes[lo:hi]
            vsz = val_sizes[vlo:vhi]
            ac_p = ac_syms[tstart:tend]
            dc_code = self._ctx.code_for_freqs(np.bincount(dsz, minlength=16))
            ac_code = self._ctx.code_for_freqs(
                np.bincount(ac_p, minlength=256)
            )
            dv, dw, dnb, dk, dlen = interleave_entries(
                dsz, dc_code, self.lanes
            )
            av, aw, anb, ak, alen = interleave_entries(
                ac_p, ac_code, self.lanes
            )
            amp_nbits = int(dsz.sum() + vsz.sum())
            pad = (-amp_nbits) % 8
            amp_len = (amp_nbits + pad) >> 3
            hv, hw = _meta_entries(
                b"".join(
                    [
                        struct.pack("<III", bh, bw, tend - tstart),
                        dc_code.to_bytes(),
                        ac_code.to_bytes(),
                        interleave_header(dnb, dk, dlen),
                    ]
                )
            )
            mv, mw = _meta_entries(interleave_header(anb, ak, alen))
            av2, aw2 = _meta_entries(struct.pack("<QI", amp_nbits, amp_len))
            vparts.extend(
                [
                    hv,
                    dv,
                    mv,
                    av,
                    av2,
                    damp[lo:hi],
                    vamp[vlo:vhi],
                    np.zeros(1, dtype=np.uint32),
                ]
            )
            wparts.extend(
                [hw, dw, mw, aw, aw2, dsz, vsz, np.asarray([pad], np.int64)]
            )
            tstart = tend

    # -- decoding ----------------------------------------------------------

    def decode_image(self, payload: bytes) -> np.ndarray:
        if len(payload) < 16 or payload[:4] != _MAGIC:
            raise CodecError("jpeg: bad or truncated header")
        version, h, w, channels, quality, subsample = struct.unpack_from(
            "<BIIBBB", payload, 4
        )
        if version not in (_V1, _V2):
            raise CodecError(f"jpeg: unsupported version {version}")
        if not (1 <= h <= 65536 and 1 <= w <= 65536):
            raise CodecError(f"jpeg: implausible image dimensions {h}x{w}")
        if channels not in (1, 3):
            raise CodecError(f"jpeg: bad channel count {channels}")
        if not 1 <= quality <= 100:
            raise CodecError(f"jpeg: bad quality field {quality}")
        luma_q, chroma_q = self._ctx.quant_tables(quality)
        offset = 4 + 12
        planes = []
        # a plane's block grid can never exceed the padded image grid
        max_blocks = ((h + 8) // 8 + 1) * ((w + 8) // 8 + 1)
        qtables = [luma_q] + [chroma_q, chroma_q][: max(channels - 1, 0)]
        for qtable in qtables[:channels]:
            plane, offset = self._decode_plane(
                payload, offset, qtable, max_blocks, version
            )
            planes.append(plane)

        if channels == 1:
            return np.clip(np.rint(planes[0][:h, :w]), 0, 255).astype(np.uint8)
        y = planes[0][:h, :w]
        if subsample:
            return ycbcr_420_planes_to_rgb(y, planes[1], planes[2])
        return ycbcr_planes_to_rgb(y, planes[1][:h, :w], planes[2][:h, :w])

    def _decode_plane(
        self,
        payload: bytes,
        offset: int,
        qtable: np.ndarray,
        max_blocks: int,
        version: int = _V1,
    ) -> tuple[np.ndarray, int]:
        if version == _V2:
            return self._decode_plane_v2(payload, offset, qtable, max_blocks)
        if offset + 16 > len(payload):
            raise CodecError("jpeg: truncated plane header")
        bh, bw, nbits = struct.unpack_from("<IIQ", payload, offset)
        offset += 16
        if bh < 1 or bw < 1 or bh * bw > max_blocks:
            raise CodecError(f"jpeg: implausible block grid {bh}x{bw}")
        dc_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        ac_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        if offset + 4 > len(payload):
            raise CodecError("jpeg: truncated plane payload length")
        (plen,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if offset + plen > len(payload):
            raise CodecError("jpeg: truncated plane payload")
        if nbits > 8 * plen:
            raise CodecError("jpeg: bit count exceeds payload size")

        nblocks = bh * bw
        zz = self._entropy_decode(
            payload[offset : offset + plen], int(nbits), nblocks, dc_code, ac_code
        )
        offset += plen
        return self._plane_from_zz(zz, bh, bw, qtable), offset

    def _plane_from_zz(
        self, zz: np.ndarray, bh: int, bw: int, qtable: np.ndarray
    ) -> np.ndarray:
        quant = zz[:, _UNZIGZAG].reshape(-1, BLOCK, BLOCK).astype(np.float32)
        quant *= qtable
        # the +128 level shift, folded into the DC coefficient (128 * 8 for
        # the orthonormal 8-point basis; the k-point rescale preserves it)
        quant[:, 0, 0] += 1024.0
        return self._plane_from_blocks(quant, bh, bw)

    def _plane_from_blocks(
        self, quant: np.ndarray, bh: int, bw: int
    ) -> np.ndarray:
        """Inverse-transform dequantized ``(n, 8, 8)`` blocks to a plane."""
        k = self._idct_points
        blocks = partial_idct_blocks(quant, k)
        if k == BLOCK:
            return unblockize(blocks, bh, bw)
        reduced = (
            blocks.reshape(bh, bw, k, k).swapaxes(1, 2).reshape(bh * k, bw * k)
        )
        factor = BLOCK // k
        return np.repeat(np.repeat(reduced, factor, axis=0), factor, axis=1)

    def _decode_plane_v2(
        self, payload: bytes, offset: int, qtable: np.ndarray, max_blocks: int
    ) -> tuple[np.ndarray, int]:
        if offset + 12 > len(payload):
            raise CodecError("jpeg: truncated plane header")
        bh, bw, n_ac = struct.unpack_from("<III", payload, offset)
        offset += 12
        if bh < 1 or bw < 1 or bh * bw > max_blocks:
            raise CodecError(f"jpeg: implausible block grid {bh}x{bw}")
        nblocks = bh * bw
        if n_ac < nblocks or n_ac > 65 * nblocks:
            # every block carries at least an EOB and at most 64 tokens + EOB
            raise CodecError("jpeg: implausible AC token count")
        dc_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        ac_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        dc_syms, offset = decode_interleaved(payload, offset, nblocks, dc_code)
        ac_syms, offset = decode_interleaved(payload, offset, n_ac, ac_code)
        if offset + 12 > len(payload):
            raise CodecError("jpeg: truncated amplitude header")
        amp_nbits, amp_len = struct.unpack_from("<QI", payload, offset)
        offset += 12
        if offset + amp_len > len(payload):
            raise CodecError("jpeg: truncated amplitude payload")
        if amp_nbits > 8 * amp_len:
            raise CodecError("jpeg: amplitude bit count exceeds payload")

        dc_sizes = dc_syms.astype(np.int64)
        if dc_sizes.size and dc_sizes.max() > _WINDOW:
            raise CodecError("jpeg: DC size category out of range")
        is_eob = ac_syms == _EOB
        is_zrl = ac_syms == _ZRL
        is_val = ~(is_eob | is_zrl)
        ac_run = np.where(is_val, ac_syms >> 4, 0).astype(np.int64)
        ac_sizes = np.where(is_val, ac_syms & 0xF, 0).astype(np.int64)

        sizes = np.concatenate([dc_sizes, ac_sizes])
        amps = _extract_amplitudes(
            payload[offset : offset + amp_len], int(amp_nbits), sizes
        )
        offset += amp_len
        vals = _amplitude_decode_vec(amps, sizes)

        if int(is_eob.sum()) != nblocks or (n_ac and not is_eob[-1]):
            raise CodecError("jpeg: block terminator count mismatch")
        # block id of each AC token = EOBs seen so far (exclusive scan)
        block_id = np.cumsum(is_eob) - is_eob
        # zigzag advance per token; EOBs advance nothing
        adv = np.where(is_zrl, 16, ac_run + 1)
        adv[is_eob] = 0
        cs = np.cumsum(adv)
        excl = cs - adv
        first = np.flatnonzero(
            np.concatenate([[True], block_id[1:] != block_id[:-1]])
        )
        base = excl[first]  # every block has >= 1 token (its EOB)
        rel = excl - base[block_id]
        k = 1 + rel + ac_run
        if is_zrl.any() and (1 + rel[is_zrl] + 16).max() > 63:
            raise CodecError("jpeg: zero run past end of block")
        if is_val.any() and k[is_val].max() > 63:
            raise CodecError("jpeg: AC coefficient index overflow")
        # Scatter dequantized coefficients straight into natural-order
        # float32 blocks: only nonzero tokens are touched, so the unzigzag
        # gather and the full-plane dequant multiply both disappear.
        qflat = qtable.reshape(-1)
        blocks = self._ctx.scratch("blocks", (nblocks, 64), np.float32)
        blocks.fill(0.0)
        dc = np.cumsum(vals[:nblocks]).astype(np.float32)
        dc *= qflat[0]
        # +128 level shift folded into the DC coefficient (128 * 8)
        dc += 1024.0
        blocks[:, 0] = dc
        if is_val.any():
            nat = _ZIGZAG[k[is_val]]
            blocks.reshape(-1)[block_id[is_val] * 64 + nat] = (
                vals[nblocks:][is_val].astype(np.float32) * qflat[nat]
            )
        plane = self._plane_from_blocks(
            blocks.reshape(-1, BLOCK, BLOCK), bh, bw
        )
        return plane, offset

    @staticmethod
    def _entropy_decode(
        payload: bytes,
        nbits: int,
        nblocks: int,
        dc_code: HuffmanCode,
        ac_code: HuffmanCode,
    ) -> np.ndarray:
        bits = unpack_bits(payload, nbits)
        windows = sliding_code_windows(bits, _WINDOW)
        dc_sym, dc_len, dc_width = dc_code.decode_tables()
        ac_sym, ac_len, ac_width = ac_code.decode_tables()
        dc_shift = _WINDOW - dc_width
        ac_shift = _WINDOW - ac_width

        zz = np.zeros((nblocks, 64), dtype=np.int64)
        pos = 0
        prev_dc = 0
        win = windows
        for b in range(nblocks):
            if pos >= nbits:
                raise CodecError("jpeg: bit stream exhausted (DC)")
            # DC: size category, then amplitude bits
            wv = int(win[pos]) >> dc_shift
            ln = int(dc_len[wv])
            if ln == 0:
                raise CodecError("jpeg: invalid DC code")
            size = int(dc_sym[wv])
            pos += ln
            if size:
                if pos >= nbits:
                    raise CodecError("jpeg: bit stream exhausted (DC amp)")
                amp = int(win[pos]) >> (_WINDOW - size)
                pos += size
            else:
                amp = 0
            prev_dc += _amplitude_decode(amp, size)
            zz[b, 0] = prev_dc
            # AC: run/size tokens until the (always-present) EOB symbol
            k = 1
            while True:
                if pos >= nbits:
                    raise CodecError("jpeg: bit stream exhausted (AC)")
                wv = int(win[pos]) >> ac_shift
                ln = int(ac_len[wv])
                if ln == 0:
                    raise CodecError("jpeg: invalid AC code")
                sym = int(ac_sym[wv])
                pos += ln
                if sym == _EOB:
                    break
                if sym == _ZRL:
                    k += 16
                    if k > 63:
                        raise CodecError("jpeg: zero run past end of block")
                    continue
                run = sym >> 4
                size = sym & 0xF
                k += run
                if k > 63:
                    raise CodecError("jpeg: AC coefficient index overflow")
                if size:
                    if pos >= nbits:
                        raise CodecError("jpeg: bit stream exhausted (AC amp)")
                    amp = int(win[pos]) >> (_WINDOW - size)
                    pos += size
                    zz[b, k] = _amplitude_decode(amp, size)
                k += 1
        if pos > nbits:
            raise CodecError("jpeg: bit stream overrun")
        return zz


register_codec("jpeg", lambda **kw: JPEGCodec(**kw))
