"""Byte-oriented run-length coding (PackBits-style).

RLE is both a standalone codec — the simple lossless scheme the paper says
earlier remote renderers relied on ("frame-differencing and run-length
encoding") — and the first stage of the BZIP pipeline, where it protects the
block sorter from degenerate long runs.

Format: a control byte ``c`` followed by data.  ``c <= 127`` introduces a
literal run of ``c + 1`` bytes; ``c >= 129`` introduces a repeat of the next
byte ``257 - c`` times (2..128 repeats).  ``c == 128`` is reserved and never
emitted.  Encoding and decoding are vectorized over run boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec

__all__ = ["RLECodec", "find_runs"]

_MAX_RUN = 128
_MAX_LITERAL = 128


def find_runs(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a 1-D array into maximal equal-value runs.

    Returns ``(starts, lengths)`` with ``starts[0] == 0`` and
    ``lengths.sum() == data.size``.
    """
    n = data.size
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(data[1:] != data[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    lengths = np.diff(np.concatenate((starts, [n])))
    return starts, lengths


class RLECodec(LosslessCodec):
    """PackBits-style run-length codec.

    ``min_run`` sets the shortest repetition worth switching out of literal
    mode for (default 3, below which the control-byte overhead loses).
    """

    name = "rle"

    def __init__(self, min_run: int = 3):
        if min_run < 2:
            raise ValueError("min_run must be >= 2")
        self.min_run = min_run

    def encode(self, data: bytes) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8)
        if arr.size == 0:
            return b""
        starts, lengths = find_runs(arr)
        out = bytearray()
        lit_start = 0  # start of pending literal region (absolute index)
        lit_end = 0

        def flush_literals() -> None:
            nonlocal lit_start
            while lit_start < lit_end:
                n = min(lit_end - lit_start, _MAX_LITERAL)
                out.append(n - 1)
                out.extend(data[lit_start : lit_start + n])
                lit_start += n

        for s, ln in zip(starts.tolist(), lengths.tolist()):
            if ln >= self.min_run:
                flush_literals()
                value = data[s]
                remaining = ln
                while remaining > 0:
                    n = min(remaining, _MAX_RUN)
                    if n == 1:  # leftover single byte: emit as literal
                        out.append(0)
                        out.append(value)
                    else:
                        out.append(257 - n)
                        out.append(value)
                    remaining -= n
                lit_start = lit_end = s + ln
            else:
                lit_end = s + ln
        flush_literals()
        return bytes(out)

    def decode(self, payload: bytes) -> bytes:
        out = bytearray()
        i = 0
        n = len(payload)
        while i < n:
            c = payload[i]
            i += 1
            if c == 128:
                raise CodecError("rle: reserved control byte 128")
            if c <= 127:
                count = c + 1
                if i + count > n:
                    raise CodecError("rle: truncated literal run")
                out += payload[i : i + count]
                i += count
            else:
                if i >= n:
                    raise CodecError("rle: truncated repeat run")
                out += payload[i : i + 1] * (257 - c)
                i += 1
        return bytes(out)


register_codec("rle", lambda **kw: RLECodec(**kw))
