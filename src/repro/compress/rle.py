"""Byte-oriented run-length coding (PackBits-style).

RLE is both a standalone codec — the simple lossless scheme the paper says
earlier remote renderers relied on ("frame-differencing and run-length
encoding") — and the first stage of the BZIP pipeline, where it protects the
block sorter from degenerate long runs.

Format: a control byte ``c`` followed by data.  ``c <= 127`` introduces a
literal run of ``c + 1`` bytes; ``c >= 129`` introduces a repeat of the next
byte ``257 - c`` times (2..128 repeats).  ``c == 128`` is reserved and never
emitted.  Both directions are fully vectorized: the encoder chunks and
interleaves repeat/literal records with batch scatters, and the decoder
enumerates the control-byte chain with pointer doubling
(:func:`repro.compress.scan.orbit_positions`) and materializes the output in
a single gather.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec
from repro.compress.scan import orbit_positions, ragged_indices

__all__ = ["RLECodec", "find_runs"]

_MAX_RUN = 128
_MAX_LITERAL = 128


def find_runs(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a 1-D array into maximal equal-value runs.

    Returns ``(starts, lengths)`` with ``starts[0] == 0`` and
    ``lengths.sum() == data.size``.
    """
    n = data.size
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(data[1:] != data[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    lengths = np.diff(np.concatenate((starts, [n])))
    return starts, lengths


class RLECodec(LosslessCodec):
    """PackBits-style run-length codec.

    ``min_run`` sets the shortest repetition worth switching out of literal
    mode for (default 3, below which the control-byte overhead loses).
    """

    name = "rle"

    def __init__(self, min_run: int = 3):
        if min_run < 2:
            raise ValueError("min_run must be >= 2")
        self.min_run = min_run

    def encode(self, data: bytes) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8)
        n = arr.size
        if n == 0:
            return b""
        starts, lengths = find_runs(arr)
        rep = lengths >= self.min_run
        rep_starts = starts[rep]
        rep_lens = lengths[rep]

        # Repeat runs chunk into <= _MAX_RUN pieces, 2 output bytes each
        # (control, value).  A leftover piece of length 1 degrades to a
        # 1-byte literal record — still (control=0, value).
        r_owner, r_off = ragged_indices(-(-rep_lens // _MAX_RUN))
        r_src = rep_starts[r_owner] + r_off * _MAX_RUN
        r_len = np.minimum(rep_lens[r_owner] - r_off * _MAX_RUN, _MAX_RUN)
        r_ctrl = np.where(r_len == 1, 0, 257 - r_len)

        # Literal regions are the gaps between repeat runs; each chunks
        # into <= _MAX_LITERAL pieces of (control, data...).
        g_starts = np.concatenate(([0], rep_starts + rep_lens))
        g_lens = np.concatenate((rep_starts, [n])) - g_starts
        keep = g_lens > 0
        g_starts = g_starts[keep]
        g_lens = g_lens[keep]
        l_owner, l_off = ragged_indices(-(-g_lens // _MAX_LITERAL))
        l_src = g_starts[l_owner] + l_off * _MAX_LITERAL
        l_len = np.minimum(g_lens[l_owner] - l_off * _MAX_LITERAL, _MAX_LITERAL)

        # Merge the two record kinds in stream order (source positions are
        # disjoint) and scatter controls, values, and literal bytes.
        src = np.concatenate((r_src, l_src))
        size = np.concatenate((np.full(r_src.size, 2, dtype=np.int64), l_len + 1))
        ctrl = np.concatenate((r_ctrl, l_len - 1)).astype(np.uint8)
        order = np.argsort(src, kind="stable")
        src = src[order]
        size = size[order]
        out_off = np.cumsum(size) - size
        out = np.empty(int(size.sum()), dtype=np.uint8)
        out[out_off] = ctrl[order]
        is_rep = np.zeros(src.size, dtype=bool)
        is_rep[: r_src.size] = True
        is_rep = is_rep[order]
        out[out_off[is_rep] + 1] = arr[src[is_rep]]
        d_owner, d_off = ragged_indices(size[~is_rep] - 1)
        out[out_off[~is_rep][d_owner] + 1 + d_off] = arr[
            src[~is_rep][d_owner] + d_off
        ]
        return out.tobytes()

    # The vectorized sweep costs O(n log records) no matter what the
    # records look like; the loop costs one Python iteration per record.
    # So the sweep only wins on record-dense payloads, which a short probe
    # detects.  The probe can only see the head of the stream (record
    # boundaries are unknowable mid-stream), so the density bar is set
    # conservatively: misrouting a dense payload to the loop costs a small
    # constant factor, never the loop's worst case.  The probe itself is a
    # Python walk, so it is kept to a fraction of a percent of the records
    # a loop decode would touch.
    _PROBE_BYTES = 512
    _VEC_MEAN_RECORD = 4

    def decode(self, payload: bytes) -> bytes:
        n = len(payload)
        if n == 0:
            return b""
        if n > 16 * self._PROBE_BYTES:
            i = records = 0
            while i < self._PROBE_BYTES:
                c = payload[i]
                i += 2 if c > 127 else c + 2
                records += 1
            if i < records * self._VEC_MEAN_RECORD:
                return self._decode_vec(payload)
        return self._decode_seq(payload)

    @staticmethod
    def _decode_seq(payload: bytes) -> bytes:
        if not isinstance(payload, bytes):
            payload = bytes(payload)  # the loop slices and repeats bytes
        out = bytearray()
        i = 0
        n = len(payload)
        while i < n:
            c = payload[i]
            i += 1
            if c == 128:
                raise CodecError("rle: reserved control byte 128")
            if c <= 127:
                count = c + 1
                if i + count > n:
                    raise CodecError("rle: truncated literal run")
                out += payload[i : i + count]
                i += count
            else:
                if i >= n:
                    raise CodecError("rle: truncated repeat run")
                out += payload[i : i + 1] * (257 - c)
                i += 1
        return bytes(out)

    @staticmethod
    def _decode_vec(payload: bytes) -> bytes:
        buf = np.frombuffer(payload, dtype=np.uint8)
        n = buf.size
        # Record i+1 starts where record i ends; enumerate the whole chain
        # with pointer doubling instead of walking it record by record.
        idx = np.arange(n, dtype=np.int64)
        jump = np.where(buf <= 127, idx + buf + 2, idx + 2)
        pos = orbit_positions(jump, n)
        ctrl = buf[pos].astype(np.int64)
        if (ctrl == 128).any():
            raise CodecError("rle: reserved control byte 128")
        is_lit = ctrl <= 127
        # Interior records end exactly where the next starts (that is how
        # the orbit was built); only the final record can run off the end.
        end = pos[-1] + (ctrl[-1] + 2 if is_lit[-1] else 2)
        if end != n:
            raise CodecError(
                "rle: truncated literal run"
                if is_lit[-1]
                else "rle: truncated repeat run"
            )
        # Materialize through one np.repeat over (value, count) entries.
        # Dropping the control bytes from the payload leaves exactly the
        # entry values in order: each literal byte (count 1) and each
        # repeat record's single value byte (count = run length).
        keep = np.ones(n, dtype=bool)
        keep[pos] = False
        values = buf[keep]
        counts = np.ones(values.size, dtype=np.intp)
        rec_idx = np.arange(pos.size)
        rep = ~is_lit
        # a repeat value at payload offset pos+1 has (record index + 1)
        # control bytes before it, so its entry index is pos - record index
        counts[pos[rep] - rec_idx[rep]] = 257 - ctrl[rep]
        return np.repeat(values, counts).tobytes()


register_codec("rle", lambda **kw: RLECodec(**kw))
