"""BZIP: Burrows–Wheeler block-sorting compressor.

Implements the full bzip2-style pipeline the paper describes ("the
Burrows-Wheeler block-sorting compression algorithm and Huffman coding"):

1. **RLE1** — byte run-length pre-pass (tames degenerate runs and shrinks
   the sorter's input on flat images);
2. **BWT** — block sort (:mod:`repro.compress.bwt`), per block;
3. **MTF** — move-to-front (:mod:`repro.compress.mtf`);
4. **RLE2** — zero runs re-coded in bijective base 2 with two dedicated
   symbols (``RUNA``/``RUNB``), exactly bzip2's scheme;
5. **Huffman** — canonical length-limited code over the 258-symbol
   alphabet, one code table per block.

Container format::

    "RBZP" | u32 original_len | u32 block_size
    per block: u32 rle1_len | u32 primary | u32 nsyms | u32 nbits
               | huffman table | u32 payload_len | payload

``block_size`` plays the role of bzip2's ``-1``..``-9`` knob.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec
from repro.compress.bwt import bwt_forward, bwt_inverse
from repro.compress.huffman import HuffmanCode, build_code, decode_symbols, encode_symbols
from repro.compress.mtf import mtf_forward, mtf_inverse
from repro.compress.rle import RLECodec, find_runs

__all__ = ["BZIPCodec"]

_MAGIC = b"RBZP"
_RUNA = 0
_RUNB = 1
_VALUE_OFFSET = 1  # MTF value v >= 1 becomes symbol v + 1
_ALPHABET = 258  # RUNA, RUNB, 2..256 for values 1..255, 257 = EOB
_EOB = 257


def _zero_runs_to_symbols(mtf_bytes: bytes) -> np.ndarray:
    """RLE2: emit RUNA/RUNB digits for zero runs, shifted values otherwise."""
    arr = np.frombuffer(mtf_bytes, dtype=np.uint8)
    starts, lengths = find_runs(arr)
    chunks: list[np.ndarray] = []
    for s, ln in zip(starts.tolist(), lengths.tolist()):
        if arr[s] == 0:
            # bijective base-2: run length r -> digits, LSB first
            digits = []
            r = ln
            while r > 0:
                r -= 1
                digits.append(_RUNB if (r & 1) else _RUNA)
                r >>= 1
            chunks.append(np.asarray(digits, dtype=np.uint32))
        else:
            chunks.append(
                arr[s : s + ln].astype(np.uint32) + np.uint32(_VALUE_OFFSET)
            )
    chunks.append(np.asarray([_EOB], dtype=np.uint32))
    return np.concatenate(chunks)


def _symbols_to_zero_runs(symbols: np.ndarray) -> bytes:
    """Invert :func:`_zero_runs_to_symbols` (EOB terminates)."""
    out = bytearray()
    run = 0
    weight = 1
    for s in symbols.tolist():
        if s in (_RUNA, _RUNB):
            run += weight * (1 if s == _RUNA else 2)
            weight <<= 1
            continue
        if run:
            out += b"\x00" * run
            run = 0
            weight = 1
        if s == _EOB:
            return bytes(out)
        if not _VALUE_OFFSET <= s <= 256:
            raise CodecError(f"bzip: symbol {s} out of range")
        out.append(s - _VALUE_OFFSET)
    raise CodecError("bzip: missing end-of-block symbol")


class BZIPCodec(LosslessCodec):
    """Block-sorting compressor (BWT + MTF + RLE2 + Huffman).

    Parameters
    ----------
    block_size:
        Bytes per independently-sorted block (default 512 KiB).  Larger
        blocks improve ratio at superlinear sort cost, mirroring bzip2's
        ``-1``..``-9``.
    """

    name = "bzip"

    def __init__(self, block_size: int = 512 * 1024):
        if block_size < 1024:
            raise ValueError("block_size must be >= 1024")
        self.block_size = block_size
        self._rle1 = RLECodec(min_run=4)

    def encode(self, data: bytes) -> bytes:
        pre = self._rle1.encode(data)
        out = [_MAGIC, struct.pack("<II", len(data), self.block_size)]
        for start in range(0, max(len(pre), 1), self.block_size):
            block = pre[start : start + self.block_size]
            last, primary = bwt_forward(block)
            mtf = mtf_forward(last)
            symbols = _zero_runs_to_symbols(mtf)
            freqs = np.bincount(symbols, minlength=_ALPHABET)
            code = build_code(freqs)
            payload, nbits = encode_symbols(symbols, code)
            out.append(
                struct.pack("<IIII", len(block), primary, symbols.size, nbits)
            )
            out.append(code.to_bytes())
            out.append(struct.pack("<I", len(payload)))
            out.append(payload)
        return b"".join(out)

    def decode(self, payload: bytes) -> bytes:
        if len(payload) < 12 or payload[:4] != _MAGIC:
            raise CodecError("bzip: bad or truncated header")
        orig_len, _block_size = struct.unpack_from("<II", payload, 4)
        offset = 12
        pre = bytearray()
        while offset < len(payload):
            if offset + 16 > len(payload):
                raise CodecError("bzip: truncated block header")
            block_len, primary, nsyms, nbits = struct.unpack_from(
                "<IIII", payload, offset
            )
            offset += 16
            code, offset = HuffmanCode.from_bytes(payload, offset)
            if offset + 4 > len(payload):
                raise CodecError("bzip: truncated payload length")
            (plen,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            if offset + plen > len(payload):
                raise CodecError("bzip: truncated block payload")
            symbols = decode_symbols(
                payload[offset : offset + plen], nbits, nsyms, code
            )
            offset += plen
            mtf = _symbols_to_zero_runs(symbols)
            last = mtf_inverse(mtf)
            block = bwt_inverse(last, primary)
            if len(block) != block_len:
                raise CodecError("bzip: block length mismatch")
            pre += block
        data = self._rle1.decode(bytes(pre))
        if len(data) != orig_len:
            raise CodecError("bzip: original length mismatch")
        return data


register_codec("bzip", lambda **kw: BZIPCodec(**kw))
