"""BZIP: Burrows–Wheeler block-sorting compressor.

Implements the full bzip2-style pipeline the paper describes ("the
Burrows-Wheeler block-sorting compression algorithm and Huffman coding"):

1. **RLE1** — byte run-length pre-pass (tames degenerate runs and shrinks
   the sorter's input on flat images);
2. **BWT** — block sort (:mod:`repro.compress.bwt`), per block;
3. **MTF** — move-to-front (:mod:`repro.compress.mtf`);
4. **RLE2** — zero runs re-coded in bijective base 2 with two dedicated
   symbols (``RUNA``/``RUNB``), exactly bzip2's scheme;
5. **Huffman** — canonical length-limited code over the 258-symbol
   alphabet, one code table per block.

Container formats (the decoder accepts both)::

    v1: "RBZP" | u32 original_len | u32 block_size
        per block: u32 rle1_len | u32 primary | u32 nsyms | u32 nbits
                   | huffman table | u32 payload_len | payload

    v2: "RBZ2" | u32 original_len | u32 block_size
        per block: u32 rle1_len | u32 primary | u32 nsyms
                   | huffman table | interleaved-lane blob
                     (see repro.compress.huffman.encode_interleaved)

v2 is the default: its per-block symbol stream is dealt into interleaved
Huffman lanes so the decoder advances many lanes per NumPy pass instead of
one symbol per Python iteration.  ``block_size`` plays the role of bzip2's
``-1``..``-9`` knob.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec
from repro.compress.bwt import bwt_forward, bwt_inverse
from repro.compress.context import CodecContext
from repro.compress.huffman import (
    HuffmanCode,
    build_code,
    decode_interleaved,
    decode_symbols,
    encode_interleaved,
    encode_symbols,
)
from repro.compress.mtf import mtf_forward, mtf_inverse
from repro.compress.rle import RLECodec, find_runs
from repro.compress.scan import ragged_indices

__all__ = ["BZIPCodec"]

_MAGIC = b"RBZP"
_MAGIC_V2 = b"RBZ2"
_RUNA = 0
_RUNB = 1
_VALUE_OFFSET = 1  # MTF value v >= 1 becomes symbol v + 1
_ALPHABET = 258  # RUNA, RUNB, 2..256 for values 1..255, 257 = EOB
_EOB = 257


_POW2 = np.int64(1) << np.arange(63, dtype=np.int64)


def _zero_runs_to_symbols(mtf_bytes: bytes) -> np.ndarray:
    """RLE2: emit RUNA/RUNB digits for zero runs, shifted values otherwise.

    Vectorized over the run list: a zero run of length ``r`` has
    ``bit_length(r + 1) - 1`` bijective base-2 digits, and digit ``i``
    (LSB first) is simply bit ``i`` of ``r + 1`` (0 = RUNA, 1 = RUNB) —
    the closed form of the sequential decrement-and-halve loop.  Digits
    and shifted literal values then land in the output through one
    ragged fancy-index store each.
    """
    arr = np.frombuffer(mtf_bytes, dtype=np.uint8)
    if arr.size == 0:
        return np.asarray([_EOB], dtype=np.uint32)
    starts, lengths = find_runs(arr)
    iszero = arr[starts] == 0
    q = lengths[iszero] + 1
    ndig = np.searchsorted(_POW2, q, side="right") - 1
    out_lens = lengths.copy()
    out_lens[iszero] = ndig
    obase = np.cumsum(out_lens)
    total = int(obase[-1])
    obase -= out_lens
    symbols = np.empty(total + 1, dtype=np.uint32)
    lit = ~iszero
    lo, loff = ragged_indices(lengths[lit])
    symbols[obase[lit][lo] + loff] = (
        arr[starts[lit][lo] + loff] + np.uint32(_VALUE_OFFSET)
    )
    do, di = ragged_indices(ndig)
    symbols[obase[iszero][do] + di] = (q[do] >> di) & 1
    symbols[-1] = _EOB
    return symbols


def _symbols_to_zero_runs(symbols: np.ndarray) -> bytes:
    """Invert :func:`_zero_runs_to_symbols` (EOB terminates).

    Vectorized: RUNA/RUNB digit groups collapse to zero-run lengths via a
    segmented positional sum, then one ``np.repeat`` materializes the
    output — no per-symbol Python loop.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    eobs = np.flatnonzero(symbols == _EOB)
    if eobs.size == 0:
        raise CodecError("bzip: missing end-of-block symbol")
    symbols = symbols[: eobs[0]]
    n = symbols.size
    if n == 0:
        return b""
    if symbols.max() > 256:
        raise CodecError(
            f"bzip: symbol {int(symbols.max())} out of range"
        )
    is_run = symbols <= _RUNB
    # group consecutive run digits; digit i of a group contributes
    # (digit_value) * 2^i, digit_value = 1 (RUNA) or 2 (RUNB)
    group_start = is_run & np.concatenate(([True], ~is_run[:-1]))
    grp = np.cumsum(group_start) - 1  # valid where is_run
    n_groups = int(group_start.sum())
    run_lens = np.zeros(max(n_groups, 1), dtype=np.int64)
    if n_groups:
        digit_pos = np.arange(n) - np.maximum.accumulate(
            np.where(group_start, np.arange(n), -1)
        )
        contrib = (symbols + 1) << np.where(is_run, digit_pos, 0)
        np.add.at(run_lens, grp[is_run], contrib[is_run])
    # stream items in order: each digit group (at its first digit) expands
    # to run_lens zeros, each value symbol to one byte
    item = ~is_run | group_start
    item_is_run = is_run[item]
    item_vals = np.where(item_is_run, 0, symbols[item] - _VALUE_OFFSET)
    # grp is -1 before the first group; clamp — those items are values,
    # so the gathered run length is discarded by the where()
    item_counts = np.where(item_is_run, run_lens[np.maximum(grp[item], 0)], 1)
    return np.repeat(item_vals, item_counts).astype(np.uint8).tobytes()


class BZIPCodec(LosslessCodec):
    """Block-sorting compressor (BWT + MTF + RLE2 + Huffman).

    Parameters
    ----------
    block_size:
        Bytes per independently-sorted block (default 512 KiB).  Larger
        blocks improve ratio at superlinear sort cost, mirroring bzip2's
        ``-1``..``-9``.
    stream_version:
        2 (default) emits the interleaved-lane container (``RBZ2``);
        1 emits the legacy single-stream container (``RBZP``).  Both
        decode regardless of this setting.
    context:
        Optional shared :class:`~repro.compress.context.CodecContext` for
        cross-frame Huffman-table reuse; private when omitted.
    """

    name = "bzip"

    def __init__(
        self,
        block_size: int = 512 * 1024,
        stream_version: int = 2,
        context: CodecContext | None = None,
    ):
        if block_size < 1024:
            raise ValueError("block_size must be >= 1024")
        if stream_version not in (1, 2):
            raise ValueError("stream_version must be 1 or 2")
        self.block_size = block_size
        self.stream_version = stream_version
        self._ctx = context if context is not None else CodecContext()
        self._rle1 = RLECodec(min_run=4)

    def use_context(self, context: CodecContext) -> None:
        """Adopt a shared cross-codec context (e.g. one per connection)."""
        self._ctx = context

    def encode(self, data: bytes) -> bytes:
        pre = self._rle1.encode(data)
        magic = _MAGIC if self.stream_version == 1 else _MAGIC_V2
        out = [magic, struct.pack("<II", len(data), self.block_size)]
        for start in range(0, max(len(pre), 1), self.block_size):
            block = pre[start : start + self.block_size]
            last, primary = bwt_forward(block)
            mtf = mtf_forward(last)
            symbols = _zero_runs_to_symbols(mtf)
            freqs = np.bincount(symbols, minlength=_ALPHABET)
            code = build_code(freqs)
            if self.stream_version == 1:
                payload, nbits = encode_symbols(symbols, code)
                out.append(
                    struct.pack(
                        "<IIII", len(block), primary, symbols.size, nbits
                    )
                )
                out.append(code.to_bytes())
                out.append(struct.pack("<I", len(payload)))
                out.append(payload)
            else:
                out.append(
                    struct.pack("<III", len(block), primary, symbols.size)
                )
                out.append(code.to_bytes())
                out.append(encode_interleaved(symbols, code))
        return b"".join(out)

    def decode(self, payload: bytes) -> bytes:
        if len(payload) < 12:
            raise CodecError("bzip: bad or truncated header")
        magic = payload[:4]
        if magic == _MAGIC:
            version = 1
        elif magic == _MAGIC_V2:
            version = 2
        else:
            raise CodecError("bzip: bad or truncated header")
        orig_len, _block_size = struct.unpack_from("<II", payload, 4)
        offset = 12
        pre = bytearray()
        while offset < len(payload):
            block, offset = self._decode_block(payload, offset, version)
            pre += block
        data = self._rle1.decode(bytes(pre))
        if len(data) != orig_len:
            raise CodecError("bzip: original length mismatch")
        return data

    def _decode_block(
        self, payload: bytes, offset: int, version: int
    ) -> tuple[bytes, int]:
        head = 16 if version == 1 else 12
        if offset + head > len(payload):
            raise CodecError("bzip: truncated block header")
        if version == 1:
            block_len, primary, nsyms, nbits = struct.unpack_from(
                "<IIII", payload, offset
            )
        else:
            block_len, primary, nsyms = struct.unpack_from(
                "<III", payload, offset
            )
        offset += head
        code, offset = self._ctx.huffman_from_bytes(payload, offset)
        if version == 1:
            if offset + 4 > len(payload):
                raise CodecError("bzip: truncated payload length")
            (plen,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            if offset + plen > len(payload):
                raise CodecError("bzip: truncated block payload")
            symbols = decode_symbols(
                payload[offset : offset + plen], nbits, nsyms, code
            )
            offset += plen
        else:
            symbols, offset = decode_interleaved(payload, offset, nsyms, code)
        mtf = _symbols_to_zero_runs(symbols)
        last = mtf_inverse(mtf)
        block = bwt_inverse(last, primary)
        if len(block) != block_len:
            raise CodecError("bzip: block length mismatch")
        return block, offset


register_codec("bzip", lambda **kw: BZIPCodec(**kw))
