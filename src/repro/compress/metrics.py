"""Compression and image-fidelity metrics used throughout the benchmarks."""

from __future__ import annotations

import numpy as np

__all__ = ["compression_ratio", "percent_reduction", "psnr"]


def compression_ratio(original_size: int, compressed_size: int) -> float:
    """Original bytes per compressed byte (>1 means the codec helped)."""
    if compressed_size <= 0:
        raise ValueError("compressed_size must be positive")
    return original_size / compressed_size


def percent_reduction(original_size: int, compressed_size: int) -> float:
    """Size reduction in percent — the paper's "compression rates we have
    achieved are 96% and up" metric."""
    if original_size <= 0:
        raise ValueError("original_size must be positive")
    return 100.0 * (1.0 - compressed_size / original_size)


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    mse = np.mean((ref - tst) ** 2)
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)
