"""Vectorized bit-stream packing for the entropy coders.

Huffman and JPEG entropy coding emit, per symbol, a variable-length code.
Packing millions of such codes one bit at a time in Python would dominate
compression cost, so this module packs *arrays* of ``(value, bit-length)``
pairs in a handful of NumPy passes (MSB-first, the conventional order for
Huffman streams), and exposes a sliding-window view used by the table-driven
decoder in :mod:`repro.compress.huffman`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_values",
    "unpack_bits",
    "sliding_code_windows",
    "bits_to_bytes",
    "BitSink",
]

MAX_CODE_BITS = 32


# Grow-only cached ramp 1, 2, 3, ... shared by every expansion call (the
# slice read is the only access, so sharing across codecs is safe).
# int32 suffices: bit-stream sections are far below 2**31 bits, and the
# narrower cumsum/gather intermediates are measurably cheaper.
_RAMP = np.arange(1, 1 << 12, dtype=np.int32)


def _ramp(total: int) -> np.ndarray:
    global _RAMP
    if _RAMP.size < total:
        _RAMP = np.arange(1, max(total, 2 * _RAMP.size) + 1, dtype=np.int32)
    return _RAMP[:total]


def _expand_bits(values: np.ndarray, lengths: np.ndarray, total: int) -> np.ndarray:
    """Expand ``(value, length)`` pairs into a flat 0/1 ``uint8`` array.

    ``total`` must equal ``lengths.sum()``.  The bit→element map comes
    from a single ``np.repeat`` (measurably cheaper than either a
    per-bit ``searchsorted`` or a scatter-ones-then-cumsum chain — the
    per-bit cumulative sum is a sequential scan and dominates);
    everything after that is flat gathers and arithmetic over ``total``
    elements.  Inputs are assumed validated (lengths in
    ``[0, MAX_CODE_BITS]``, values fitting their lengths).
    """
    ends = np.cumsum(lengths, dtype=np.int32)
    nzl = lengths > 0
    lnz = lengths[nzl]
    elem = np.repeat(np.arange(lnz.size, dtype=np.int32), lnz)
    # shift counts down from length-1 to 0 inside each element (MSB first):
    # shift = (end_of_element - 1) - absolute_bit_position.
    shift = ends[nzl][elem]
    shift -= _ramp(total)
    # uint32 is wide enough: only the low `length <= 32` bits are read.
    vals = values[nzl].astype(np.uint32, copy=False)[elem]
    # shift is nonnegative (it stays below each element's length), so the
    # reinterpreting view is a free alternative to an astype copy.
    vals >>= shift.view(np.uint32)
    vals &= np.uint32(1)
    return vals.astype(np.uint8)


def pack_values(values: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Pack ``values[i]`` into ``lengths[i]`` bits each, MSB-first.

    Returns ``(payload, nbits)`` where ``payload`` is the packed bytes
    (zero-padded to a byte boundary) and ``nbits`` the exact bit count.
    Values must fit in their declared lengths; zero-length entries are
    permitted and contribute nothing.
    """
    values = np.asarray(values, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape:
        raise ValueError("values and lengths must have the same shape")
    if lengths.size == 0:
        return b"", 0
    if lengths.min() < 0 or lengths.max() > MAX_CODE_BITS:
        raise ValueError(f"bit lengths must be in [0, {MAX_CODE_BITS}]")
    total = int(lengths.sum())
    if total == 0:
        return b"", 0
    bits = _expand_bits(values, lengths, total)
    return bits_to_bytes(bits), total


class BitSink:
    """Growable bit accumulator for the vectorized entropy encoders.

    A preallocated ``uint8`` bit buffer (one byte per bit until the final
    ``packbits``) that amortizes allocation across writes and across
    frames: the encoder keeps one sink per :class:`~repro.compress.
    context.CodecContext` tag, ``clear()``s it per plane, and the backing
    array only ever grows.  ``write`` has :func:`pack_values` semantics
    (MSB-first, zero-length entries contribute nothing) minus validation
    of value magnitudes.
    """

    def __init__(self, capacity_bits: int = 1 << 16):
        self._bits = np.empty(max(int(capacity_bits), 8), dtype=np.uint8)
        self._n = 0

    @property
    def nbits(self) -> int:
        return self._n

    def clear(self) -> None:
        """Reset to empty; the backing buffer is kept."""
        self._n = 0

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need > self._bits.size:
            grown = np.empty(max(need, 2 * self._bits.size), dtype=np.uint8)
            grown[: self._n] = self._bits[: self._n]
            self._bits = grown

    def write(self, values: np.ndarray, lengths: np.ndarray) -> None:
        """Append ``values[i]`` as ``lengths[i]`` MSB-first bits each."""
        values = np.asarray(values)
        lengths = np.asarray(lengths, dtype=np.int64)
        if values.shape != lengths.shape:
            raise ValueError("values and lengths must have the same shape")
        if lengths.size == 0:
            return
        if lengths.min() < 0 or lengths.max() > MAX_CODE_BITS:
            raise ValueError(f"bit lengths must be in [0, {MAX_CODE_BITS}]")
        total = int(lengths.sum())
        if total == 0:
            return
        self._reserve(total)
        self._expand_into(
            values, lengths, total, self._bits[self._n : self._n + total]
        )
        self._n += total

    def _expand_into(
        self,
        values: np.ndarray,
        lengths: np.ndarray,
        total: int,
        out: np.ndarray,
    ) -> None:
        """:func:`_expand_bits` writing into ``out``.

        Same bit layout, cheaper map: the per-bit element id never
        materializes — both per-bit quantities (entry end and entry
        value) come straight out of one ``np.repeat`` each, which also
        absorbs zero-length entries for free, so the mask/compress
        passes of the module-level version disappear.
        """
        ends = np.cumsum(lengths, dtype=np.int32)
        shift = np.repeat(ends, lengths)
        shift -= _ramp(total)
        vals = np.repeat(values.astype(np.uint32, copy=False), lengths)
        # shift is nonnegative, so the reinterpreting view is free
        vals >>= shift.view(np.uint32)
        vals &= np.uint32(1)
        np.copyto(out, vals, casting="unsafe")

    def payload(self) -> tuple[bytes, int]:
        """``(packed_bytes, nbits)`` of everything written so far."""
        if self._n == 0:
            return b"", 0
        return bits_to_bytes(self._bits[: self._n]), self._n


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 ``uint8`` array into bytes, MSB-first, zero padded."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def unpack_bits(payload: bytes, nbits: int) -> np.ndarray:
    """Unpack ``payload`` into the first ``nbits`` bits as a 0/1 array."""
    if nbits == 0:
        return np.zeros(0, dtype=np.uint8)
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    if bits.size < nbits:
        raise ValueError(f"payload holds {bits.size} bits, need {nbits}")
    return bits[:nbits]


def sliding_code_windows(bits: np.ndarray, width: int) -> np.ndarray:
    """Value of ``bits[i : i+width]`` (MSB-first) for every start ``i``.

    The table-driven Huffman decoder peeks ``width`` bits at a time; this
    precomputes all peeks in one vectorized pass.  Positions within
    ``width-1`` of the end read zero-padding, matching a decoder that pads
    its bit reservoir with zeros.
    """
    if width < 1 or width > MAX_CODE_BITS:
        raise ValueError(f"width must be in [1, {MAX_CODE_BITS}]")
    n = bits.size
    padded = np.zeros(n + width - 1, dtype=np.uint32)
    padded[:n] = bits
    windows = np.zeros(n, dtype=np.uint32)
    for k in range(width):
        windows |= padded[k : k + n] << np.uint32(width - 1 - k)
    return windows
