"""Vectorized bit-stream packing for the entropy coders.

Huffman and JPEG entropy coding emit, per symbol, a variable-length code.
Packing millions of such codes one bit at a time in Python would dominate
compression cost, so this module packs *arrays* of ``(value, bit-length)``
pairs in a handful of NumPy passes (MSB-first, the conventional order for
Huffman streams), and exposes a sliding-window view used by the table-driven
decoder in :mod:`repro.compress.huffman`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_values", "unpack_bits", "sliding_code_windows", "bits_to_bytes"]

MAX_CODE_BITS = 32


def pack_values(values: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Pack ``values[i]`` into ``lengths[i]`` bits each, MSB-first.

    Returns ``(payload, nbits)`` where ``payload`` is the packed bytes
    (zero-padded to a byte boundary) and ``nbits`` the exact bit count.
    Values must fit in their declared lengths; zero-length entries are
    permitted and contribute nothing.
    """
    values = np.asarray(values, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape:
        raise ValueError("values and lengths must have the same shape")
    if lengths.size == 0:
        return b"", 0
    if lengths.min() < 0 or lengths.max() > MAX_CODE_BITS:
        raise ValueError(f"bit lengths must be in [0, {MAX_CODE_BITS}]")

    ends = np.cumsum(lengths)
    total = int(ends[-1])
    if total == 0:
        return b"", 0
    starts = ends - lengths

    # Map every output bit to its source element, then to the bit offset
    # inside that element's code (MSB first).
    bitpos = np.arange(total, dtype=np.int64)
    elem = np.searchsorted(ends, bitpos, side="right")
    shift = (lengths[elem] - 1 - (bitpos - starts[elem])).astype(np.uint64)
    bits = ((values[elem] >> shift) & np.uint64(1)).astype(np.uint8)
    return bits_to_bytes(bits), total


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 ``uint8`` array into bytes, MSB-first, zero padded."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def unpack_bits(payload: bytes, nbits: int) -> np.ndarray:
    """Unpack ``payload`` into the first ``nbits`` bits as a 0/1 array."""
    if nbits == 0:
        return np.zeros(0, dtype=np.uint8)
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    if bits.size < nbits:
        raise ValueError(f"payload holds {bits.size} bits, need {nbits}")
    return bits[:nbits]


def sliding_code_windows(bits: np.ndarray, width: int) -> np.ndarray:
    """Value of ``bits[i : i+width]`` (MSB-first) for every start ``i``.

    The table-driven Huffman decoder peeks ``width`` bits at a time; this
    precomputes all peeks in one vectorized pass.  Positions within
    ``width-1`` of the end read zero-padding, matching a decoder that pads
    its bit reservoir with zeros.
    """
    if width < 1 or width > MAX_CODE_BITS:
        raise ValueError(f"width must be in [1, {MAX_CODE_BITS}]")
    n = bits.size
    padded = np.zeros(n + width - 1, dtype=np.uint32)
    padded[:n] = bits
    windows = np.zeros(n, dtype=np.uint32)
    for k in range(width):
        windows |= padded[k : k + n] << np.uint32(width - 1 - k)
    return windows
