"""Burrows–Wheeler transform via prefix-doubling on cyclic rotations.

The paper's BZIP codec "compresses data using the Burrows-Wheeler
block-sorting compression algorithm and Huffman coding" [2].  This module
provides the block sorter: the forward transform sorts all cyclic rotations
of the block with O(n log n)-pass NumPy prefix doubling (each pass is a
``lexsort`` over (rank, rank-k-ahead) key pairs), and the inverse rebuilds
the block by following the last-first mapping.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CodecError

__all__ = ["bwt_forward", "bwt_inverse"]


def bwt_forward(data: bytes) -> tuple[bytes, int]:
    """Return ``(last_column, primary_index)`` of the sorted rotations.

    ``primary_index`` is the row at which the original string appears in
    the sorted rotation matrix; the inverse needs it to anchor the walk.
    """
    n = len(data)
    if n == 0:
        return b"", 0
    if n == 1:
        return data, 0

    s = np.frombuffer(data, dtype=np.uint8)
    # Seed the doubling at k = 4: rank every rotation by its first four
    # bytes at once (big-endian packing makes numeric order lexicographic
    # order), skipping the two slowest refinement passes outright.
    ext = np.resize(s, n + 3).astype(np.uint32)  # cyclic wrap, any n >= 2
    win = (
        (ext[:n] << 24) | (ext[1 : n + 1] << 16)
        | (ext[2 : n + 2] << 8) | ext[3 : n + 3]
    )
    order = np.argsort(win)
    w_sorted = win[order]
    changed = np.empty(n, dtype=np.int64)
    changed[0] = 0
    np.not_equal(w_sorted[1:], w_sorted[:-1], out=changed[1:])
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.cumsum(changed)
    k = 4
    # rank < n always, so (rank, rank-k-ahead) packs into one int64 key
    # and each refinement pass is a single sort, not a two-key lexsort.
    shift = np.int64(n.bit_length())
    while k < n and rank[order[-1]] != n - 1:
        key2 = np.concatenate([rank[k:], rank[:k]])
        combined = (rank << shift) | key2
        order = np.argsort(combined)
        c_sorted = combined[order]
        changed[0] = 0
        np.not_equal(c_sorted[1:], c_sorted[:-1], out=changed[1:])
        rank[order] = np.cumsum(changed)
        k <<= 1

    # Periodic strings leave identical rotations tied; break ties by the
    # rotation's start index (stable, matching a stable full sort).
    sa = np.lexsort((np.arange(n), rank))
    last = s[(sa - 1) % n]
    primary = int(np.flatnonzero(sa == 0)[0])
    return last.tobytes(), primary


def bwt_inverse(last_column: bytes, primary: int) -> bytes:
    """Invert :func:`bwt_forward`."""
    n = len(last_column)
    if n == 0:
        return b""
    if not 0 <= primary < n:
        raise CodecError("bwt: primary index out of range")
    last = np.frombuffer(last_column, dtype=np.uint8)
    # LF mapping: row i of the last column corresponds to the occurrence of
    # byte last[i]; its position in the (sorted) first column is
    # starts[last[i]] + (occurrence index among equal bytes).
    counts = np.bincount(last, minlength=256).astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    # occurrence index: stable ranking of each element among equals.
    order = np.argsort(last, kind="stable")
    occ = np.empty(n, dtype=np.int64)
    occ[order] = np.arange(n) - starts[last[order]]
    lf = starts[last] + occ

    # Walk the cycle. Python-level loop over plain lists: the chain is a
    # strictly sequential dependency, so this cannot be vectorized; lists
    # keep per-step cost to two C-level index operations.
    lf_list = lf.tolist()
    last_list = last.tolist()
    out = bytearray(n)
    p = primary
    for i in range(n - 1, -1, -1):
        out[i] = last_list[p]
        p = lf_list[p]
    return bytes(out)
