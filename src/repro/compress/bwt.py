"""Burrows–Wheeler transform via prefix-doubling on cyclic rotations.

The paper's BZIP codec "compresses data using the Burrows-Wheeler
block-sorting compression algorithm and Huffman coding" [2].  This module
provides the block sorter: the forward transform sorts all cyclic rotations
of the block with O(n log n)-pass NumPy prefix doubling (each pass is a
``lexsort`` over (rank, rank-k-ahead) key pairs), and the inverse rebuilds
the block by following the last-first mapping.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CodecError

__all__ = ["bwt_forward", "bwt_inverse"]


def bwt_forward(data: bytes) -> tuple[bytes, int]:
    """Return ``(last_column, primary_index)`` of the sorted rotations.

    ``primary_index`` is the row at which the original string appears in
    the sorted rotation matrix; the inverse needs it to anchor the walk.
    """
    n = len(data)
    if n == 0:
        return b"", 0
    if n == 1:
        return data, 0

    s = np.frombuffer(data, dtype=np.uint8)
    rank = s.astype(np.int64)
    k = 1
    while k < n:
        key2 = np.roll(rank, -k)
        order = np.lexsort((key2, rank))
        # New rank: group id of each (rank, key2) pair in sorted order.
        r_sorted = rank[order]
        k_sorted = key2[order]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        changed[1:] = (r_sorted[1:] != r_sorted[:-1]) | (
            k_sorted[1:] != k_sorted[:-1]
        )
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(changed)
        rank = new_rank
        if rank[order[-1]] == n - 1:  # all ranks distinct
            break
        k <<= 1

    # Periodic strings leave identical rotations tied; break ties by the
    # rotation's start index (stable, matching a stable full sort).
    sa = np.lexsort((np.arange(n), rank))
    last = s[(sa - 1) % n]
    primary = int(np.flatnonzero(sa == 0)[0])
    return last.tobytes(), primary


def bwt_inverse(last_column: bytes, primary: int) -> bytes:
    """Invert :func:`bwt_forward`."""
    n = len(last_column)
    if n == 0:
        return b""
    if not 0 <= primary < n:
        raise CodecError("bwt: primary index out of range")
    last = np.frombuffer(last_column, dtype=np.uint8)
    # LF mapping: row i of the last column corresponds to the occurrence of
    # byte last[i]; its position in the (sorted) first column is
    # starts[last[i]] + (occurrence index among equal bytes).
    counts = np.bincount(last, minlength=256).astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    # occurrence index: stable ranking of each element among equals.
    order = np.argsort(last, kind="stable")
    occ = np.empty(n, dtype=np.int64)
    occ[order] = np.arange(n) - starts[last[order]]
    lf = starts[last] + occ

    # Walk the cycle. Python-level loop over plain lists: the chain is a
    # strictly sequential dependency, so this cannot be vectorized; lists
    # keep per-step cost to two C-level index operations.
    lf_list = lf.tolist()
    last_list = last.tolist()
    out = bytearray(n)
    p = primary
    for i in range(n - 1, -1, -1):
        out[i] = last_list[p]
        p = lf_list[p]
    return bytes(out)
