"""Color-space conversion and chroma resampling for the JPEG codec.

Baseline JPEG operates on full-range BT.601 YCbCr; subsampling chroma 2:1
in both directions (4:2:0) exploits exactly the perceptual asymmetry the
paper cites — "small color changes are perceived less accurately than small
changes in brightness".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "downsample_420",
    "upsample_420",
    "pad_to_multiple",
]


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """``(H, W, 3) uint8`` RGB → ``(H, W, 3) float32`` full-range YCbCr."""
    rgb = rgb.astype(np.float32)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """``(H, W, 3) float`` YCbCr → ``(H, W, 3) uint8`` RGB (clipped)."""
    y = ycc[..., 0]
    cb = ycc[..., 1] - 128.0
    cr = ycc[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def downsample_420(plane: np.ndarray) -> np.ndarray:
    """Average 2×2 pixel blocks (plane is padded to even dims first)."""
    p = pad_to_multiple(plane, 2)
    return 0.25 * (p[0::2, 0::2] + p[0::2, 1::2] + p[1::2, 0::2] + p[1::2, 1::2])


def upsample_420(plane: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour 2× upsample, cropped to ``out_shape``."""
    up = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    return up[: out_shape[0], : out_shape[1]]


def pad_to_multiple(plane: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-replicate pad both dims up to the next ``multiple``."""
    h, w = plane.shape
    ph = (-h) % multiple
    pw = (-w) % multiple
    if ph == 0 and pw == 0:
        return plane
    return np.pad(plane, ((0, ph), (0, pw)), mode="edge")
