"""Color-space conversion and chroma resampling for the JPEG codec.

Baseline JPEG operates on full-range BT.601 YCbCr; subsampling chroma 2:1
in both directions (4:2:0) exploits exactly the perceptual asymmetry the
paper cites — "small color changes are perceived less accurately than small
changes in brightness".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_ycbcr",
    "rgb_to_ycbcr_planes",
    "ycbcr_to_rgb",
    "ycbcr_planes_to_rgb",
    "ycbcr_420_planes_to_rgb",
    "downsample_420",
    "upsample_420",
    "pad_to_multiple",
]

# YCbCr -> RGB as one affine map over planar (3, H*W) data:
# rgb = _FROM_YCC @ ycc + _FROM_YCC_BIAS (the bias folds the -128 chroma
# centering through the matrix), so the inverse conversion is a single
# small GEMM plus whole-row passes — planar rows keep every pass
# contiguous, which beats per-pixel (H, W, 3) striding severalfold.
_FROM_YCC = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ],
    dtype=np.float32,
)
_FROM_YCC_BIAS = np.array(
    [[-128.0 * 1.402], [128.0 * (0.344136 + 0.714136)], [-128.0 * 1.772]],
    dtype=np.float32,
)

# RGB -> YCbCr as the matching forward GEMM (chroma centering added after).
_TO_YCC = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ],
    dtype=np.float32,
)


def rgb_to_ycbcr_planes(
    rgb: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(H, W, 3)`` RGB → three contiguous ``(H, W) float32`` planes.

    One contiguous uint8→float32 cast, then the whole conversion is a
    single ``(3, 3) @ (3, H*W)`` GEMM — the exact mirror of the decode
    side's :func:`_planar_to_rgb` — plus two scalar adds for the chroma
    centering.  ``out`` (``(3, H, W) float32``, the result planes) and
    ``tmp`` (``(4, H, W) float32``; the first three planes' worth holds
    the cast GEMM input) are optional preallocated workspaces — the JPEG
    encoder passes context scratch so steady-state encoding allocates
    nothing here.  The output is identical with or without the
    workspaces.
    """
    h, w = rgb.shape[:2]
    if out is None:
        out = np.empty((3, h, w), dtype=np.float32)
    if tmp is None:
        tmp = np.empty((4, h, w), dtype=np.float32)
    n = h * w
    rgbf = tmp.reshape(-1)[: 3 * n].reshape(n, 3)
    np.copyto(rgbf, rgb.reshape(n, 3), casting="unsafe")
    planes = out.reshape(3, n)
    np.matmul(_TO_YCC, rgbf.T, out=planes)
    planes[1] += np.float32(128.0)
    planes[2] += np.float32(128.0)
    return out[0], out[1], out[2]


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """``(H, W, 3) uint8`` RGB → ``(H, W, 3) float32`` full-range YCbCr."""
    return np.stack(rgb_to_ycbcr_planes(rgb), axis=-1)


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """``(H, W, 3) float`` YCbCr → ``(H, W, 3) uint8`` RGB (clipped)."""
    return ycbcr_planes_to_rgb(ycc[..., 0], ycc[..., 1], ycc[..., 2])


def ycbcr_planes_to_rgb(
    y: np.ndarray, cb: np.ndarray, cr: np.ndarray
) -> np.ndarray:
    """Like :func:`ycbcr_to_rgb` but from separate component planes.

    Skips materializing the stacked ``(H, W, 3)`` intermediate — the
    planes are gathered straight into the planar GEMM input.
    """
    h, w = y.shape
    p = np.empty((3, h, w), dtype=np.float32)
    p[0] = y
    p[1] = cb
    p[2] = cr
    return _planar_to_rgb(p)


def ycbcr_420_planes_to_rgb(
    y: np.ndarray, cb: np.ndarray, cr: np.ndarray
) -> np.ndarray:
    """:func:`ycbcr_planes_to_rgb` with 2×-subsampled chroma planes.

    ``cb``/``cr`` are at least ``ceil(h/2) x ceil(w/2)``; the
    nearest-neighbour upsample happens as four strided scatters straight
    into the planar GEMM input, never materializing full-size chroma.
    """
    h, w = y.shape
    p = np.empty((3, h, w), dtype=np.float32)
    p[0] = y
    for dst, src in ((p[1], cb), (p[2], cr)):
        dst[0::2, 0::2] = src[: (h + 1) // 2, : (w + 1) // 2]
        dst[0::2, 1::2] = src[: (h + 1) // 2, : w // 2]
        dst[1::2, 0::2] = src[: h // 2, : (w + 1) // 2]
        dst[1::2, 1::2] = src[: h // 2, : w // 2]
    return _planar_to_rgb(p)


def _planar_to_rgb(p: np.ndarray) -> np.ndarray:
    _, h, w = p.shape
    rgb = _FROM_YCC @ p.reshape(3, -1)
    rgb += _FROM_YCC_BIAS
    np.rint(rgb, out=rgb)
    np.clip(rgb, 0.0, 255.0, out=rgb)
    return rgb.T.astype(np.uint8).reshape(h, w, 3)


def downsample_420(
    plane: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Average 2×2 pixel blocks (plane is padded to even dims first).

    ``out`` is an optional preallocated half-size result buffer; the
    accumulation order matches the plain expression form, so the output
    is bit-identical with or without it.
    """
    p = pad_to_multiple(plane, 2)
    a = np.add(p[0::2, 0::2], p[0::2, 1::2], out=out)
    a += p[1::2, 0::2]
    a += p[1::2, 1::2]
    a *= 0.25
    return a


def upsample_420(plane: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour 2× upsample, cropped to ``out_shape``."""
    h, w = plane.shape
    up = np.broadcast_to(plane[:, None, :, None], (h, 2, w, 2))
    return up.reshape(2 * h, 2 * w)[: out_shape[0], : out_shape[1]]


def pad_to_multiple(plane: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-replicate pad both dims up to the next ``multiple``."""
    h, w = plane.shape
    ph = (-h) % multiple
    pw = (-w) % multiple
    if ph == 0 and pw == 0:
        return plane
    return np.pad(plane, ((0, ph), (0, pw)), mode="edge")
