"""Color-space conversion and chroma resampling for the JPEG codec.

Baseline JPEG operates on full-range BT.601 YCbCr; subsampling chroma 2:1
in both directions (4:2:0) exploits exactly the perceptual asymmetry the
paper cites — "small color changes are perceived less accurately than small
changes in brightness".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "ycbcr_planes_to_rgb",
    "ycbcr_420_planes_to_rgb",
    "downsample_420",
    "upsample_420",
    "pad_to_multiple",
]

# YCbCr -> RGB as one affine map over planar (3, H*W) data:
# rgb = _FROM_YCC @ ycc + _FROM_YCC_BIAS (the bias folds the -128 chroma
# centering through the matrix), so the inverse conversion is a single
# small GEMM plus whole-row passes — planar rows keep every pass
# contiguous, which beats per-pixel (H, W, 3) striding severalfold.
_FROM_YCC = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ],
    dtype=np.float32,
)
_FROM_YCC_BIAS = np.array(
    [[-128.0 * 1.402], [128.0 * (0.344136 + 0.714136)], [-128.0 * 1.772]],
    dtype=np.float32,
)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """``(H, W, 3) uint8`` RGB → ``(H, W, 3) float32`` full-range YCbCr."""
    rgb = rgb.astype(np.float32)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """``(H, W, 3) float`` YCbCr → ``(H, W, 3) uint8`` RGB (clipped)."""
    return ycbcr_planes_to_rgb(ycc[..., 0], ycc[..., 1], ycc[..., 2])


def ycbcr_planes_to_rgb(
    y: np.ndarray, cb: np.ndarray, cr: np.ndarray
) -> np.ndarray:
    """Like :func:`ycbcr_to_rgb` but from separate component planes.

    Skips materializing the stacked ``(H, W, 3)`` intermediate — the
    planes are gathered straight into the planar GEMM input.
    """
    h, w = y.shape
    p = np.empty((3, h, w), dtype=np.float32)
    p[0] = y
    p[1] = cb
    p[2] = cr
    return _planar_to_rgb(p)


def ycbcr_420_planes_to_rgb(
    y: np.ndarray, cb: np.ndarray, cr: np.ndarray
) -> np.ndarray:
    """:func:`ycbcr_planes_to_rgb` with 2×-subsampled chroma planes.

    ``cb``/``cr`` are at least ``ceil(h/2) x ceil(w/2)``; the
    nearest-neighbour upsample happens as four strided scatters straight
    into the planar GEMM input, never materializing full-size chroma.
    """
    h, w = y.shape
    p = np.empty((3, h, w), dtype=np.float32)
    p[0] = y
    for dst, src in ((p[1], cb), (p[2], cr)):
        dst[0::2, 0::2] = src[: (h + 1) // 2, : (w + 1) // 2]
        dst[0::2, 1::2] = src[: (h + 1) // 2, : w // 2]
        dst[1::2, 0::2] = src[: h // 2, : (w + 1) // 2]
        dst[1::2, 1::2] = src[: h // 2, : w // 2]
    return _planar_to_rgb(p)


def _planar_to_rgb(p: np.ndarray) -> np.ndarray:
    _, h, w = p.shape
    rgb = _FROM_YCC @ p.reshape(3, -1)
    rgb += _FROM_YCC_BIAS
    np.rint(rgb, out=rgb)
    np.clip(rgb, 0.0, 255.0, out=rgb)
    return rgb.T.astype(np.uint8).reshape(h, w, 3)


def downsample_420(plane: np.ndarray) -> np.ndarray:
    """Average 2×2 pixel blocks (plane is padded to even dims first)."""
    p = pad_to_multiple(plane, 2)
    return 0.25 * (p[0::2, 0::2] + p[0::2, 1::2] + p[1::2, 0::2] + p[1::2, 1::2])


def upsample_420(plane: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour 2× upsample, cropped to ``out_shape``."""
    h, w = plane.shape
    up = np.broadcast_to(plane[:, None, :, None], (h, 2, w, 2))
    return up.reshape(2 * h, 2 * w)[: out_shape[0], : out_shape[1]]


def pad_to_multiple(plane: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-replicate pad both dims up to the next ``multiple``."""
    h, w = plane.shape
    ph = (-h) % multiple
    pw = (-w) % multiple
    if ph == 0 and pw == 0:
        return plane
    return np.pad(plane, ((0, ph), (0, pw)), mode="edge")
