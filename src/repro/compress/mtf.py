"""Move-to-front coding, the middle stage of the BZIP pipeline.

After the Burrows–Wheeler sort, equal context bytes cluster, so MTF turns
the block into a stream dominated by small values (mostly zeros), which the
zero-run + Huffman back end then squeezes.  MTF is an inherently sequential
recurrence over the alphabet list, so both directions are tight Python
loops over C-backed lists.
"""

from __future__ import annotations

from repro.compress.base import CodecError

__all__ = ["mtf_forward", "mtf_inverse"]


def mtf_forward(data: bytes) -> bytes:
    """Replace each byte with its index in a move-to-front alphabet list."""
    alphabet = list(range(256))
    out = bytearray(len(data))
    index = alphabet.index
    for i, b in enumerate(data):
        j = index(b)
        out[i] = j
        if j:
            del alphabet[j]
            alphabet.insert(0, b)
    return bytes(out)


def mtf_inverse(data: bytes) -> bytes:
    """Invert :func:`mtf_forward`."""
    alphabet = list(range(256))
    out = bytearray(len(data))
    for i, j in enumerate(data):
        if j >= len(alphabet):
            raise CodecError("mtf: index out of alphabet range")
        b = alphabet[j]
        out[i] = b
        if j:
            del alphabet[j]
            alphabet.insert(0, b)
    return bytes(out)
