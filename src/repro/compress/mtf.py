"""Move-to-front coding, the middle stage of the BZIP pipeline.

After the Burrows–Wheeler sort, equal context bytes cluster, so MTF turns
the block into a stream dominated by small values (mostly zeros), which the
zero-run + Huffman back end then squeezes.  The recurrence is inherently
sequential *per distinct value*, but not per byte: inside a run of equal
bytes every byte after the first maps to index 0 (forward) and every zero
index repeats the current front byte (inverse).  Both directions therefore
iterate only over run boundaries — a tiny fraction of the stream on BWT
output — and fill the runs with NumPy batch operations, with the alphabet
kept as a ``bytearray`` so the lookup/move inside the loop is C-speed.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import CodecError

__all__ = ["mtf_forward", "mtf_inverse"]


def mtf_forward(data: bytes) -> bytes:
    """Replace each byte with its index in a move-to-front alphabet list."""
    n = len(data)
    if n == 0:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    # run starts: only these produce a nonzero index; the rest are zeros
    starts = np.concatenate(
        ([0], np.flatnonzero(arr[1:] != arr[:-1]) + 1)
    )
    out = np.zeros(n, dtype=np.uint8)
    alphabet = bytearray(range(256))
    index = alphabet.index
    insert = alphabet.insert
    indices = np.empty(starts.size, dtype=np.uint8)
    for i, b in enumerate(arr[starts].tolist()):
        j = index(b)
        indices[i] = j
        if j:
            del alphabet[j]
            insert(0, b)
    out[starts] = indices
    return out.tobytes()


def mtf_inverse(data: bytes) -> bytes:
    """Invert :func:`mtf_forward`."""
    n = len(data)
    if n == 0:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    # zero indices repeat the current front byte; only nonzero indices
    # move the alphabet, so loop over those alone
    nz = np.flatnonzero(arr)
    alphabet = bytearray(range(256))
    insert = alphabet.insert
    vals = np.empty(nz.size, dtype=np.uint8)
    for i, j in enumerate(arr[nz].tolist()):
        if j >= len(alphabet):  # pragma: no cover - alphabet is always 256
            raise CodecError("mtf: index out of alphabet range")
        b = alphabet[j]
        vals[i] = b
        del alphabet[j]
        insert(0, b)
    # segment fill: [0, nz[0]) is the initial front byte 0; [nz[i], nz[i+1])
    # is vals[i]
    seg_starts = np.concatenate(([0], nz))
    seg_vals = np.concatenate(([0], vals))
    seg_lens = np.diff(np.concatenate((seg_starts, [n])))
    return np.repeat(seg_vals, seg_lens).astype(np.uint8).tobytes()
