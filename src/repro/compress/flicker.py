"""Temporal-stability (flicker) analysis of lossy animation codecs.

§7.1: "one potential problem with lossy methods is that the loss could
change between adjacent frames, and, in our setting, between adjacent
image blocks, which could produce a flickering in the final animation.
We have not experienced such a problem so far."

This module measures that effect so the claim is testable: codec flicker
is the energy the codec *adds* to frame-to-frame differences, beyond the
scene's own motion.  For a stable codec the decoded difference tracks the
original difference; flicker shows up as excess temporal noise in
regions the scene left unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.base import Codec

__all__ = ["FlickerReport", "measure_flicker"]


@dataclass(frozen=True)
class FlickerReport:
    """Temporal-stability measurements over an animation sequence.

    ``excess_temporal_rms`` is the RMS of the codec-induced component of
    frame deltas (decoded delta minus original delta), in 8-bit levels —
    the flicker the viewer would see.  ``static_region_rms`` restricts
    the same measure to pixels the original animation left (nearly)
    unchanged, where flicker is most visible.  ``psnr_std`` is the
    spread of per-frame quality.
    """

    excess_temporal_rms: float
    static_region_rms: float
    psnr_std: float
    n_frames: int

    @property
    def visible(self) -> bool:
        """Rule of thumb: ~1 level of temporal noise in static regions is
        the edge of visibility for 8-bit content."""
        return self.static_region_rms > 1.0


def measure_flicker(
    frames: list[np.ndarray], codec: Codec, static_threshold: float = 2.0
) -> FlickerReport:
    """Encode/decode an animation and quantify codec-induced flicker."""
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    decoded = [
        codec.decode_image(codec.encode_image(f)).astype(np.float64)
        for f in frames
    ]
    originals = [np.asarray(f, dtype=np.float64) for f in frames]

    excess_sq = []
    static_sq = []
    psnrs = []
    for k in range(1, len(frames)):
        d_orig = originals[k] - originals[k - 1]
        d_dec = decoded[k] - decoded[k - 1]
        excess = d_dec - d_orig
        excess_sq.append(np.mean(excess**2))
        static = np.abs(d_orig).max(axis=-1) <= static_threshold
        if static.any():
            static_sq.append(np.mean(excess[static] ** 2))
        err = np.mean((decoded[k] - originals[k]) ** 2)
        psnrs.append(
            200.0 if err == 0 else 10.0 * np.log10(255.0**2 / err)
        )
    return FlickerReport(
        excess_temporal_rms=float(np.sqrt(np.mean(excess_sq))),
        static_region_rms=float(np.sqrt(np.mean(static_sq))) if static_sq else 0.0,
        psnr_std=float(np.std(psnrs)),
        n_frames=len(frames),
    )
