"""Compressibility analysis: why some frames compress and others do not.

§6 explains Table 1's dataset dependence: jet frames (low pixel
coverage) compress far better than vortex frames ("more pixel coverage
in the images — these images cannot be compressed as well").  This
module provides the measurable quantities behind that observation:
pixel coverage, Shannon entropy, and a codec-free compressed-size
estimate useful when planning a session's bandwidth budget.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pixel_coverage",
    "shannon_entropy_bits",
    "estimate_compressed_bytes",
    "frame_statistics",
]


def pixel_coverage(image: np.ndarray, threshold: int = 8) -> float:
    """Fraction of pixels carrying foreground content.

    A pixel counts as covered when any channel exceeds ``threshold``
    (out of 255) — the paper's "pixel coverage" driver of compression
    behaviour.
    """
    arr = np.asarray(image)
    if arr.ndim == 3:
        lit = (arr > threshold).any(axis=2)
    else:
        lit = arr > threshold
    return float(lit.mean())


def shannon_entropy_bits(image: np.ndarray) -> float:
    """Zeroth-order Shannon entropy of the byte values, in bits/byte.

    An (optimistic) lower bound for order-0 entropy coders; real codecs
    beat it by exploiting spatial structure, but the *ordering* across
    images predicts their relative compressibility.
    """
    counts = np.bincount(np.asarray(image, dtype=np.uint8).ravel(), minlength=256)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def estimate_compressed_bytes(image: np.ndarray) -> float:
    """Codec-free estimate of a lossless compressed size.

    Entropy of the horizontal byte-delta stream (a cheap proxy for what
    an LZ/BWT coder sees) times the byte count.  Within ~2x of real LZO
    output on rendered frames — good enough for bandwidth planning.
    """
    arr = np.asarray(image, dtype=np.uint8)
    flat = arr.reshape(arr.shape[0], -1)
    delta = np.diff(flat.astype(np.int16), axis=1, prepend=flat[:, :1].astype(np.int16))
    as_bytes = (delta % 256).astype(np.uint8)
    bits_per_byte = shannon_entropy_bits(as_bytes)
    return arr.size * bits_per_byte / 8.0


def frame_statistics(image: np.ndarray) -> dict[str, float]:
    """Coverage, entropy and size estimate for one frame, in one call."""
    return {
        "pixel_coverage": pixel_coverage(image),
        "entropy_bits_per_byte": shannon_entropy_bits(image),
        "estimated_lossless_bytes": estimate_compressed_bytes(image),
        "raw_bytes": float(np.asarray(image).size),
    }
