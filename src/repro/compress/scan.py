"""Vectorized stream-scanning primitives for the byte codecs.

The RLE and LZO containers are sequences of variable-size records whose
sizes are data-dependent: record ``i+1`` starts where record ``i`` says it
ends.  That chain looks inherently sequential, but because every *potential*
start position has a computable jump target, the actual record positions are
just the orbit of position 0 under the jump map — which pointer doubling
enumerates in ``O(log n)`` vectorized passes instead of one Python iteration
per record.  Combined with :func:`ragged_indices` for gather/scatter of the
variable-length record bodies, a whole container parses in a handful of
NumPy operations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["orbit_positions", "ragged_indices", "POPCOUNT"]

#: bits set per byte value, for flag-byte record sizing.
POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def orbit_positions(jump: np.ndarray, limit: int) -> np.ndarray:
    """Positions visited from 0 under ``jump`` until reaching ``limit``.

    ``jump[i]`` must be the start of the record after one at ``i``, clamped
    to ``limit``, and strictly greater than ``i`` (every record consumes at
    least one byte), so the orbit is strictly increasing until it saturates.
    Pointer doubling: pass ``k`` knows the first ``2^k`` positions and a
    composed jump map ``jump^(2^k)``, so each vectorized pass doubles the
    known prefix.
    """
    if limit <= 0:
        return np.zeros(0, dtype=np.int64)
    # intp throughout: any other dtype makes every g[g] pass pay a hidden
    # index-conversion copy.
    g = np.concatenate([np.minimum(jump, limit), [limit]]).astype(np.intp)
    positions = np.zeros(1, dtype=np.intp)
    while positions[-1] < limit:
        positions = np.concatenate([positions, g[positions]])
        if positions[-1] < limit:
            g = g[g]
    return positions[positions < limit].astype(np.int64)


def ragged_indices(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten variable-length ranges: ``(owner, offset)`` per element.

    For ``lengths = [2, 0, 3]`` returns owners ``[0, 0, 2, 2, 2]`` and
    offsets ``[0, 1, 0, 1, 2]`` — the standard building block for gathering
    ``lengths[i]`` consecutive elements per record in one fancy-index pass
    (``src[starts[owner] + offset]``).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    owner = np.repeat(np.arange(lengths.size), lengths)
    offset = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    return owner, offset
