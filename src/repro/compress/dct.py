"""8×8 block DCT, quantization tables and zigzag scan for the JPEG codec.

The 2-D type-II DCT over an 8×8 block factorizes into two matrix products
with the 8×8 orthonormal DCT basis; batching blocks as an ``(n, 8, 8)``
array turns the whole transform into two broadcast ``matmul`` passes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BLOCK",
    "dct2_blocks",
    "dct2_strips",
    "idct2_blocks",
    "blockize",
    "blockize_into",
    "unblockize",
    "zigzag_indices",
    "quant_tables",
    "STD_LUMA_QUANT",
    "STD_CHROMA_QUANT",
]

BLOCK = 8


def _dct_basis(n: int = BLOCK) -> np.ndarray:
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    basis = np.cos((2 * i + 1) * k * np.pi / (2 * n)) * np.sqrt(2.0 / n)
    basis[0] /= np.sqrt(2.0)
    return basis.astype(np.float32)


_BASIS = _dct_basis()
_BASIS_T = np.ascontiguousarray(_BASIS.T)
#: k-point synthesis bases for the reduced-resolution inverse transform.
_PARTIAL_BASIS = {kk: _dct_basis(kk) for kk in (2, 4)}


def dct2_blocks(
    blocks: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """Orthonormal 2-D DCT-II of an ``(n, 8, 8)`` batch.

    The separable transform is two batched GEMM passes over the whole
    block tensor.  ``tmp`` and ``out`` are optional preallocated result
    buffers for those passes (the encoder hands in
    :meth:`~repro.compress.context.CodecContext.scratch` arrays so
    steady-state encoding allocates nothing here); ``out`` may alias
    ``blocks`` — the first pass has already consumed it — but must not
    alias ``tmp``.
    """
    tmp = np.matmul(_BASIS, blocks, out=tmp)
    if (
        tmp.flags.c_contiguous
        and out is not None
        and out.flags.c_contiguous
    ):
        # The right-multiply by the shared 8x8 basis treats every block
        # row independently, so the whole batch collapses into ONE
        # (n*8, 8) @ (8, 8) GEMM — same 8-term dot products in the same
        # order (bit-identical), but without the per-block dispatch of a
        # batched matmul.
        np.matmul(
            tmp.reshape(-1, BLOCK), _BASIS_T, out=out.reshape(-1, BLOCK)
        )
        return out
    return np.matmul(tmp, _BASIS_T, out=out)


def dct2_strips(plane: np.ndarray, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """2-D DCT-II of an ``(H, W)`` plane, blocks left in plane layout.

    The 8×8 blocks of a plane never leave their natural storage: the
    column pass is one GEMM per 8-row strip (every strip is the 8×8
    blocks of that block-row side by side, so ``B @ strip`` transforms
    them all at once), and the row pass is one flat ``(H*W/8, 8)`` GEMM
    (every 8-float row segment of the strip result is one block row).
    The per-block arithmetic — and therefore the result, bit for bit —
    matches :func:`dct2_blocks`, but no blockized copy of the plane ever
    exists.  ``out[i*8+y, j*8+x]`` is coefficient ``(y, x)`` of block
    ``(i, j)``.  ``out`` may alias ``plane``; ``tmp`` may not alias
    either.  All three must be C-contiguous ``(H, W) float32`` with dims
    multiples of 8.
    """
    h, w = plane.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError("plane dims must be multiples of 8")
    np.matmul(_BASIS, plane.reshape(h // BLOCK, BLOCK, w), out=tmp.reshape(h // BLOCK, BLOCK, w))
    np.matmul(tmp.reshape(-1, BLOCK), _BASIS_T, out=out.reshape(-1, BLOCK))
    return out


def idct2_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct2_blocks`."""
    return _BASIS_T @ coeffs @ _BASIS


def partial_idct_blocks(coeffs: np.ndarray, k: int) -> np.ndarray:
    """Reduced-resolution inverse DCT: the libjpeg-style fast decode.

    Uses only the top-left ``k x k`` coefficients of each 8x8 block and
    inverse-transforms them with a ``k``-point basis, producing a
    ``(n, k, k)`` batch whose pixels approximate ``8/k``-downsampled
    block content.  The ``k/8`` energy rescale keeps the block mean
    consistent between the 8-point analysis and k-point synthesis.
    """
    if k not in (1, 2, 4, 8):
        raise ValueError("k must be one of 1, 2, 4, 8")
    if k == 8:
        return idct2_blocks(coeffs)
    # per-axis amplitude rescale sqrt(k/8), applied for both axes
    sub = np.ascontiguousarray(coeffs[:, :k, :k]) * (k / BLOCK)
    if k == 1:
        return sub  # one pixel per block: exactly the block mean
    basis_k = _PARTIAL_BASIS[k]
    return basis_k.T @ sub @ basis_k


def blockize(plane: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Split an ``(H, W)`` plane (dims multiples of 8) into ``(n, 8, 8)``.

    Returns the block batch plus the block-grid dimensions ``(bh, bw)``;
    blocks are in row-major grid order.
    """
    h, w = plane.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError("plane dims must be multiples of 8")
    bh, bw = h // BLOCK, w // BLOCK
    blocks = plane.reshape(bh, BLOCK, bw, BLOCK).swapaxes(1, 2)
    return blocks.reshape(-1, BLOCK, BLOCK), bh, bw


def blockize_into(
    plane: np.ndarray, out: np.ndarray, sub: float = 0.0
) -> tuple[np.ndarray, int, int]:
    """:func:`blockize` writing into a preallocated ``(n, 8, 8)`` batch.

    Unlike :func:`blockize` (whose result is a strided view) the output
    is contiguous, which is what the batched GEMM of :func:`dct2_blocks`
    wants.  ``sub`` is subtracted during the copy (the JPEG level shift
    rides along with the transpose pass); dtype conversion too.
    """
    h, w = plane.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError("plane dims must be multiples of 8")
    bh, bw = h // BLOCK, w // BLOCK
    view = plane.reshape(bh, BLOCK, bw, BLOCK).transpose(0, 2, 1, 3)
    dst = out.reshape(bh, bw, BLOCK, BLOCK)
    if sub:
        np.subtract(view, np.asarray(sub, dtype=out.dtype), out=dst)
    else:
        np.copyto(dst, view, casting="unsafe")
    return out, bh, bw


def unblockize(blocks: np.ndarray, bh: int, bw: int) -> np.ndarray:
    """Invert :func:`blockize`."""
    return (
        blocks.reshape(bh, bw, BLOCK, BLOCK)
        .swapaxes(1, 2)
        .reshape(bh * BLOCK, bw * BLOCK)
    )


def zigzag_indices() -> np.ndarray:
    """Flat indices of the 8×8 zigzag scan (length 64)."""
    order = sorted(
        ((i, j) for i in range(BLOCK) for j in range(BLOCK)),
        key=lambda ij: (
            ij[0] + ij[1],
            ij[1] if (ij[0] + ij[1]) % 2 == 0 else ij[0],
        ),
    )
    return np.asarray([i * BLOCK + j for i, j in order], dtype=np.int64)


#: ITU T.81 Annex K reference quantization tables.
STD_LUMA_QUANT = np.asarray(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float32,
)

STD_CHROMA_QUANT = np.asarray(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float32,
)


def quant_tables(quality: int) -> tuple[np.ndarray, np.ndarray]:
    """Quality-scaled (luma, chroma) quantization tables, IJG formula.

    ``quality`` in 1..100; 50 reproduces the reference tables, higher is
    finer.  This is the user-visible degree-of-loss knob the paper refers
    to ("the user can control the degree of loss by adjusting certain
    parameters").
    """
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    scale = 5000.0 / quality if quality < 50 else 200.0 - 2.0 * quality
    tables = []
    for base in (STD_LUMA_QUANT, STD_CHROMA_QUANT):
        t = np.floor((base * scale + 50.0) / 100.0)
        tables.append(np.clip(t, 1, 255).astype(np.float32))
    return tables[0], tables[1]
