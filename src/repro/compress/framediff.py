"""Frame-differencing codec — the paper's §7.1 future-work extension.

"The other is to exploit frame (temporal) coherence as the frame
differencing technique demonstrated by Crockett [5]."  Consecutive frames of
a time-varying animation differ little, so transmitting the per-pixel delta
against the previously-sent frame (then compressing the mostly-zero delta
losslessly) beats compressing each frame independently — exactly the
scheme earlier renderer implementations combined with run-length coding.

This codec is *stateful per stream*: encoder and decoder each keep the last
reference frame and must observe the same frame sequence.  ``reset()``
resynchronizes (e.g. after a viewpoint change); the first frame after a
reset is sent as a key frame.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import Codec, CodecError, LosslessCodec, register_codec
from repro.compress.lzo import LZOCodec

__all__ = ["FrameDifferencingCodec"]

_KEY = 0
_DELTA = 1


class FrameDifferencingCodec(Codec):
    """Temporal delta coding against the previous frame.

    Parameters
    ----------
    inner:
        Lossless codec applied to the key frame / delta bytes
        (default :class:`~repro.compress.lzo.LZOCodec`).
    key_interval:
        Force a key frame every N frames (0 = only the first frame and
        after ``reset``), bounding error propagation on a lossy channel.
    """

    name = "framediff"
    lossless = True

    def __init__(self, inner: LosslessCodec | None = None, key_interval: int = 0):
        if key_interval < 0:
            raise ValueError("key_interval must be >= 0")
        self.inner = inner if inner is not None else LZOCodec()
        if not self.inner.lossless:
            raise ValueError("inner codec must be lossless")
        self.key_interval = key_interval
        self._ref: np.ndarray | None = None
        self._since_key = 0

    def reset(self) -> None:
        """Drop the reference frame; the next frame is sent as a key."""
        self._ref = None
        self._since_key = 0

    # -- image interface (primary) ------------------------------------------

    def encode_image(self, image: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(image)
        if arr.dtype != np.uint8:
            raise CodecError("framediff: image must be uint8")
        force_key = (
            self._ref is None
            or self._ref.shape != arr.shape
            or (self.key_interval and self._since_key >= self.key_interval)
        )
        shape = arr.shape + (1,) * (3 - arr.ndim)
        header = struct.pack(
            "<BIIB",
            _KEY if force_key else _DELTA,
            shape[0],
            shape[1],
            shape[2],
        )
        if force_key:
            payload = self.inner.encode(arr.tobytes())
            self._since_key = 0
        else:
            # Modular delta: uint8 wraparound subtraction is self-inverse
            # under wraparound addition, so the delta stays one byte/pixel.
            delta = arr - self._ref
            payload = self.inner.encode(delta.tobytes())
            self._since_key += 1
        self._ref = arr.copy()
        return header + payload

    def decode_image(self, payload: bytes) -> np.ndarray:
        if len(payload) < 10:
            raise CodecError("framediff: truncated header")
        kind, h, w, c = struct.unpack_from("<BIIB", payload, 0)
        raw = self.inner.decode(payload[10:])
        arr = np.frombuffer(raw, dtype=np.uint8)
        shape = (h, w) if c == 1 else (h, w, c)
        if arr.size != h * w * c:
            raise CodecError("framediff: payload size mismatch")
        arr = arr.reshape(shape)
        if kind == _KEY:
            frame = arr.copy()
        elif kind == _DELTA:
            if self._ref is None or self._ref.shape != shape:
                raise CodecError("framediff: delta frame without reference")
            frame = self._ref + arr
        else:
            raise CodecError(f"framediff: unknown frame kind {kind}")
        self._ref = frame
        return frame

    # -- byte interface (treats the stream as a flat 1-D frame) -------------

    def encode(self, data: bytes) -> bytes:
        return self.encode_image(
            np.frombuffer(data, dtype=np.uint8).reshape(1, -1)
        )

    def decode(self, payload: bytes) -> bytes:
        return self.decode_image(payload).tobytes()


register_codec("framediff", lambda **kw: FrameDifferencingCodec(**kw))
