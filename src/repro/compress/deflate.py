"""GZIP-class codec: LZ77 parsing + canonical Huffman entropy coding.

§4.2 positions BZIP against gzip: "BZIP has very good lossless
compression, better than gzip in compression and decompression time …
Compression is generally considerably better than that achieved by more
conventional LZ77/LZ78-based compressors."  This codec is that
conventional comparator, built from the library's own parts: the LZO
match finder's token stream, re-coded with two canonical Huffman tables
(literal/length and distance) in the spirit of DEFLATE — not
bit-compatible with RFC 1951, but the same algorithmic family and the
same ratio/speed regime.

Token model:

- literal byte  → symbol 0..255 in the lit/len alphabet;
- match         → symbol 256 + length_bucket (length 3..258 in 16
  buckets, log-spaced) with extra bits, then a distance bucket symbol
  (16 log-spaced buckets over 1..65535) with extra bits;
- symbol 256 + 16 = end of stream.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec
from repro.compress.bitio import sliding_code_windows, unpack_bits
from repro.compress.huffman import HuffmanCode, build_code
from repro.compress.lzo import LZOCodec

__all__ = ["DeflateCodec"]

_MAGIC = b"RDFL"
_MIN_MATCH = 3
_N_BUCKETS = 16
_LITERALS = 256
_EOS = _LITERALS + _N_BUCKETS  # end-of-stream symbol
_LITLEN_ALPHABET = _LITERALS + _N_BUCKETS + 1
_WINDOW = 16


def _make_buckets(max_value: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced bucket bases and extra-bit counts covering 0..max_value.

    The first half of the buckets have width 1 (exact small values, the
    common case for runs and near distances); widths then double, DEFLATE
    style; the last bucket absorbs the remainder of the range.
    """
    bases = [0]
    span = 1
    while len(bases) <= n:
        bases.append(bases[-1] + span)
        if len(bases) > n // 2:
            span *= 2
    bases_arr = np.asarray(bases[:n], dtype=np.int64)
    bits_arr = np.zeros(n, dtype=np.int64)
    for i in range(n - 1):
        width = int(bases_arr[i + 1] - bases_arr[i])
        bits_arr[i] = max(width - 1, 0).bit_length()
    bits_arr[n - 1] = max(int(max_value - bases_arr[n - 1]), 0).bit_length()
    return bases_arr, bits_arr


_LEN_BASES, _LEN_BITS = _make_buckets(258 - _MIN_MATCH, _N_BUCKETS)
_DIST_BASES, _DIST_BITS = _make_buckets(65535 - 1, _N_BUCKETS)


def _bucket_of(value: int, bases: np.ndarray) -> int:
    return int(np.searchsorted(bases, value, side="right")) - 1


class DeflateCodec(LosslessCodec):
    """LZ77 + Huffman codec (the conventional gzip-family comparator).

    ``level`` forwards to the LZ match finder (1 fast .. 9 tight).
    """

    name = "deflate"

    def __init__(self, level: int = 6):
        self._lz = LZOCodec(level=level)
        self.level = level

    # -- encoding ----------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        tokens = self._tokenize(self._lz.encode(data))
        symbols: list[int] = []
        extra_vals: list[int] = []
        extra_bits: list[int] = []
        dist_symbols: list[int] = []

        stream: list[tuple[int, int, int, int, int]] = []
        # (litlen_sym, len_extra, len_bits, dist_sym(-1 none), dist_extra/bits packed later)
        for kind, a, b in tokens:
            if kind == 0:  # literal byte a
                stream.append((a, 0, 0, -1, 0))
            else:  # match: a = length, b = distance
                lb = _bucket_of(a - _MIN_MATCH, _LEN_BASES)
                db = _bucket_of(b - 1, _DIST_BASES)
                stream.append(
                    (
                        _LITERALS + lb,
                        (a - _MIN_MATCH) - int(_LEN_BASES[lb]),
                        int(_LEN_BITS[lb]),
                        db,
                        (b - 1) - int(_DIST_BASES[db]),
                    )
                )
        stream.append((_EOS, 0, 0, -1, 0))

        litlen_freq = np.zeros(_LITLEN_ALPHABET, dtype=np.int64)
        dist_freq = np.zeros(_N_BUCKETS, dtype=np.int64)
        for sym, _, _, dsym, _ in stream:
            litlen_freq[sym] += 1
            if dsym >= 0:
                dist_freq[dsym] += 1
        litlen_code = build_code(litlen_freq)
        dist_code = build_code(dist_freq)

        # interleave: litlen code, len extra, [dist code, dist extra]
        values: list[int] = []
        lengths: list[int] = []
        for sym, lext, lbits, dsym, dext in stream:
            values.append(int(litlen_code.codes[sym]))
            lengths.append(int(litlen_code.lengths[sym]))
            if lbits:
                values.append(lext)
                lengths.append(lbits)
            if dsym >= 0:
                values.append(int(dist_code.codes[dsym]))
                lengths.append(int(dist_code.lengths[dsym]))
                dbits = int(_DIST_BITS[dsym])
                if dbits:
                    values.append(dext)
                    lengths.append(dbits)
        from repro.compress.bitio import pack_values

        payload, nbits = pack_values(
            np.asarray(values, dtype=np.uint64), np.asarray(lengths)
        )
        return b"".join(
            [
                _MAGIC,
                struct.pack("<IQ", len(data), nbits),
                litlen_code.to_bytes(),
                dist_code.to_bytes(),
                payload,
            ]
        )

    def _tokenize(self, lz_stream: bytes) -> list[tuple[int, int, int]]:
        """Parse the LZO container back into (kind, a, b) tokens."""
        (orig_len,) = struct.unpack_from("<I", lz_stream, 4)
        tokens: list[tuple[int, int, int]] = []
        i = 8
        n = len(lz_stream)
        produced = 0
        while produced < orig_len:
            flags = lz_stream[i]
            i += 1
            for bit in range(7, -1, -1):
                if produced >= orig_len:
                    break
                if flags & (1 << bit):
                    # the run-split matcher emits these tokens through
                    # numpy tobytes, so the encoder side has no struct
                    # wire: lz-match-token (vectorized encoder)
                    dist, lx = struct.unpack_from("<HB", lz_stream, i)
                    i += 3
                    tokens.append((1, lx + _MIN_MATCH, dist))
                    produced += lx + _MIN_MATCH
                else:
                    tokens.append((0, lz_stream[i], 0))
                    produced += 1
                    i += 1
        return tokens

    # -- decoding ----------------------------------------------------------

    def decode(self, payload: bytes) -> bytes:
        if len(payload) < 16 or payload[:4] != _MAGIC:
            raise CodecError("deflate: bad or truncated header")
        orig_len, nbits = struct.unpack_from("<IQ", payload, 4)
        offset = 16
        litlen_code, offset = HuffmanCode.from_bytes(payload, offset)
        dist_code, offset = HuffmanCode.from_bytes(payload, offset)
        if nbits > 8 * (len(payload) - offset):
            raise CodecError("deflate: bit count exceeds payload")
        bits = unpack_bits(payload[offset:], int(nbits))
        win = sliding_code_windows(bits, _WINDOW)
        ll_sym, ll_len, ll_width = litlen_code.decode_tables()
        d_sym, d_len, d_width = dist_code.decode_tables()
        ll_shift = _WINDOW - ll_width
        d_shift = _WINDOW - d_width

        out = bytearray()
        pos = 0
        limit = int(nbits)
        while True:
            if pos >= limit:
                raise CodecError("deflate: bit stream exhausted")
            w = int(win[pos]) >> ll_shift
            ln = int(ll_len[w])
            if ln == 0:
                raise CodecError("deflate: invalid lit/len code")
            sym = int(ll_sym[w])
            pos += ln
            if sym == _EOS:
                break
            if sym < _LITERALS:
                out.append(sym)
                continue
            bucket = sym - _LITERALS
            lbits = int(_LEN_BITS[bucket])
            extra = 0
            if lbits:
                if pos >= limit:
                    raise CodecError("deflate: bit stream exhausted (len)")
                extra = int(win[pos]) >> (_WINDOW - lbits)
                pos += lbits
            length = _MIN_MATCH + int(_LEN_BASES[bucket]) + extra
            if pos >= limit:
                raise CodecError("deflate: bit stream exhausted (dist)")
            w = int(win[pos]) >> d_shift
            dln = int(d_len[w])
            if dln == 0:
                raise CodecError("deflate: invalid distance code")
            dbucket = int(d_sym[w])
            pos += dln
            dbits = int(_DIST_BITS[dbucket])
            dextra = 0
            if dbits:
                if pos >= limit:
                    raise CodecError("deflate: bit stream exhausted (dextra)")
                dextra = int(win[pos]) >> (_WINDOW - dbits)
                pos += dbits
            dist = 1 + int(_DIST_BASES[dbucket]) + dextra
            src = len(out) - dist
            if src < 0:
                raise CodecError("deflate: distance before stream start")
            if dist >= length:
                out += out[src : src + length]
            else:
                window = bytes(out[src:])
                reps = -(-length // dist)
                out += (window * reps)[:length]
        if len(out) != orig_len:
            raise CodecError("deflate: length mismatch after decode")
        return bytes(out)


register_codec("deflate", lambda **kw: DeflateCodec(**kw))
