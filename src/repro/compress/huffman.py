"""Canonical Huffman coding over ``uint16`` symbol alphabets.

Used as the entropy-coding back end of both the BZIP pipeline
(:mod:`repro.compress.bzip`) and the JPEG-style codec
(:mod:`repro.compress.jpeg`).  Code construction is the classic two-queue
Huffman algorithm with a frequency-flattening retry to enforce a maximum
code length of :data:`MAX_BITS`, so the decoder can be a single
``2**MAX_BITS``-entry lookup table; encoding and table construction are
vectorized, decoding walks one table lookup per symbol.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.compress.base import CodecError
from repro.compress.bitio import pack_values, sliding_code_windows, unpack_bits

__all__ = ["HuffmanCode", "build_code", "encode_symbols", "decode_symbols"]

#: Longest permitted code, bounding decoder table size to 64 Ki entries.
MAX_BITS = 16


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol for the given frequency table (0 = unused)."""
    nz = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nz.size == 0:
        return lengths
    if nz.size == 1:
        lengths[nz[0]] = 1
        return lengths
    # Heap of (weight, tiebreak, leaf-symbols). Merging whole leaf lists is
    # fine at our alphabet sizes (<= ~64K symbols, typically <= 300).
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in nz
    ]
    heapq.heapify(heap)
    tie = int(freqs.size)
    while len(heap) > 1:
        w1, _, l1 = heapq.heappop(heap)
        w2, _, l2 = heapq.heappop(heap)
        for s in l1:
            lengths[s] += 1
        for s in l2:
            lengths[s] += 1
        heapq.heappush(heap, (w1 + w2, tie, l1 + l2))
        tie += 1
    return lengths


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical code: per-symbol bit ``lengths`` and ``codes``."""

    lengths: np.ndarray  # uint8, 0 for unused symbols
    codes: np.ndarray  # uint32, canonical MSB-first codes

    @property
    def alphabet_size(self) -> int:
        return self.lengths.size

    @property
    def max_length(self) -> int:
        return int(self.lengths.max(initial=0))

    _LEN_FIELD_BITS = 5  # enough for MAX_BITS == 16

    def to_bytes(self) -> bytes:
        """Serialize as alphabet size + 5-bit-packed per-symbol lengths.

        The dense packed form costs ``ceil(5·size/8)`` bytes — far below
        the per-used-symbol record format for typical alphabets, which
        matters because every compressed block/plane carries its tables.
        """
        from repro.compress.bitio import pack_values

        packed, _ = pack_values(
            self.lengths.astype(np.uint64),
            np.full(self.lengths.size, self._LEN_FIELD_BITS, dtype=np.int64),
        )
        return struct.pack("<I", self.lengths.size) + packed

    @classmethod
    def from_bytes(cls, payload: bytes, offset: int = 0) -> tuple["HuffmanCode", int]:
        """Deserialize; returns the code and the offset past it."""
        if len(payload) < offset + 4:
            raise CodecError("huffman: truncated code table header")
        (size,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if size > 65536:
            raise CodecError("huffman: implausible code table size")
        nbytes = (size * cls._LEN_FIELD_BITS + 7) // 8
        if len(payload) < offset + nbytes:
            raise CodecError("huffman: truncated code table body")
        buf = np.frombuffer(payload, dtype=np.uint8, count=nbytes, offset=offset)
        bits = np.unpackbits(buf)[: size * cls._LEN_FIELD_BITS]
        weights = 1 << np.arange(cls._LEN_FIELD_BITS - 1, -1, -1)
        lengths = (
            bits.reshape(size, cls._LEN_FIELD_BITS).astype(np.uint16) @ weights
        ).astype(np.uint8)
        if size and lengths.max(initial=0) > MAX_BITS:
            raise CodecError("huffman: invalid code length in table")
        return cls.from_lengths(lengths), offset + nbytes

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCode":
        """Assign canonical codes (shorter first, then symbol order)."""
        lengths = np.asarray(lengths, dtype=np.uint8)
        codes = np.zeros(lengths.size, dtype=np.uint32)
        code = 0
        prev_len = 0
        order = np.lexsort((np.arange(lengths.size), lengths))
        for s in order:
            ln = int(lengths[s])
            if ln == 0:
                continue
            code <<= ln - prev_len
            codes[s] = code
            code += 1
            prev_len = ln
        if prev_len and code > (1 << prev_len):
            raise CodecError("huffman: over-subscribed code lengths")
        return cls(lengths=lengths, codes=codes)

    def decode_tables(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(symbol, length)`` lookup tables indexed by a peeked window."""
        width = max(self.max_length, 1)
        lut_sym = np.zeros(1 << width, dtype=np.uint32)
        lut_len = np.zeros(1 << width, dtype=np.uint32)
        for s in np.flatnonzero(self.lengths):
            ln = int(self.lengths[s])
            base = int(self.codes[s]) << (width - ln)
            span = 1 << (width - ln)
            lut_sym[base : base + span] = s
            lut_len[base : base + span] = ln
        return lut_sym, lut_len, width


def build_code(freqs: np.ndarray, max_bits: int = MAX_BITS) -> HuffmanCode:
    """Build a canonical, length-limited code for ``freqs``.

    Length limiting flattens the frequency distribution (halving with a
    floor of 1) and rebuilds until the deepest code fits — a standard
    zlib-style fallback that costs at most a few percent of optimality.
    """
    freqs = np.asarray(freqs, dtype=np.int64).copy()
    if freqs.ndim != 1:
        raise ValueError("freqs must be 1-D")
    while True:
        lengths = _huffman_lengths(freqs)
        if lengths.max(initial=0) <= max_bits:
            return HuffmanCode.from_lengths(lengths)
        nz = freqs > 0
        freqs[nz] = (freqs[nz] + 1) >> 1


def encode_symbols(symbols: np.ndarray, code: HuffmanCode) -> tuple[bytes, int]:
    """Encode a symbol array; returns ``(payload, nbits)``."""
    symbols = np.asarray(symbols)
    if symbols.size and (
        symbols.min() < 0 or symbols.max() >= code.alphabet_size
    ):
        raise ValueError("symbol out of alphabet range")
    if symbols.size and (code.lengths[symbols] == 0).any():
        raise ValueError("symbol has no assigned code")
    return pack_values(code.codes[symbols], code.lengths[symbols])


def decode_symbols(
    payload: bytes, nbits: int, count: int, code: HuffmanCode
) -> np.ndarray:
    """Decode exactly ``count`` symbols from a packed payload."""
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    bits = unpack_bits(payload, nbits)
    lut_sym, lut_len, width = code.decode_tables()
    windows = sliding_code_windows(bits, width)
    out = np.empty(count, dtype=np.uint32)
    pos = 0
    limit = nbits
    # Per-symbol loop: one table peek + one advance. Hot path — keep locals.
    win = windows
    lsym = lut_sym
    llen = lut_len
    for i in range(count):
        if pos >= limit:
            raise CodecError("huffman: bit stream exhausted")
        w = win[pos]
        ln = llen[w]
        if ln == 0:
            raise CodecError("huffman: invalid code word")
        out[i] = lsym[w]
        pos += ln
    if pos > limit:
        raise CodecError("huffman: bit stream overrun")
    return out
