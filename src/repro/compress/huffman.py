"""Canonical Huffman coding over ``uint16`` symbol alphabets.

Used as the entropy-coding back end of both the BZIP pipeline
(:mod:`repro.compress.bzip`) and the JPEG-style codec
(:mod:`repro.compress.jpeg`).  Code construction is the classic two-queue
Huffman algorithm with a frequency-flattening retry to enforce a maximum
code length of :data:`MAX_BITS`, so the decoder can be a single
``2**MAX_BITS``-entry lookup table; encoding and table construction are
vectorized.

Two stream layouts exist:

- the legacy layout (:func:`encode_symbols`/:func:`decode_symbols`): one
  stream, decoded one table lookup per symbol in a Python loop;
- the interleaved layout (:func:`encode_interleaved` /
  :func:`decode_interleaved`): the symbol sequence is dealt round-robin
  into ``K`` independent lanes, each entropy-coded separately and
  byte-aligned into one blob.  The decoder advances all ``K`` lanes per
  NumPy gather pass — the paper's per-sub-image parallel-decompression
  trick (Figure 10) applied *inside* a single stream, cutting the Python
  iteration count by ``K``.

Decode lookup tables are memoized on the :class:`HuffmanCode` instance
(built at most once per distinct code object; :data:`TABLE_BUILDS` counts
builds for regression tests), and :class:`~repro.compress.context.
CodecContext` deduplicates instances across frames by table bytes.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.compress.base import CodecError
from repro.compress.bitio import pack_values, sliding_code_windows, unpack_bits

__all__ = [
    "HuffmanCode",
    "build_code",
    "encode_symbols",
    "decode_symbols",
    "encode_interleaved",
    "decode_interleaved",
    "interleave_entries",
    "interleave_header",
]

#: Longest permitted code, bounding decoder table size to 64 Ki entries.
MAX_BITS = 16

#: Default lane count for the interleaved layout (the per-lane byte
#: alignment plus the 2-byte-per-lane header is noise beyond ~64 symbols
#: per lane, and 128 lanes already amortize the Python loop to irrelevance).
DEFAULT_LANES = 128

#: Decode-table builds since import — regression tests assert memoization
#: (one build per distinct table) against this counter.
TABLE_BUILDS = 0

#: Encode-table builds since import, same contract as :data:`TABLE_BUILDS`.
ENCODE_TABLE_BUILDS = 0


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol for the given frequency table (0 = unused)."""
    nz = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nz.size == 0:
        return lengths
    if nz.size == 1:
        lengths[nz[0]] = 1
        return lengths
    # Heap of (weight, tiebreak, leaf-symbols). Merging whole leaf lists is
    # fine at our alphabet sizes (<= ~64K symbols, typically <= 300).
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in nz
    ]
    heapq.heapify(heap)
    tie = int(freqs.size)
    while len(heap) > 1:
        w1, _, l1 = heapq.heappop(heap)
        w2, _, l2 = heapq.heappop(heap)
        for s in l1:
            lengths[s] += 1
        for s in l2:
            lengths[s] += 1
        heapq.heappush(heap, (w1 + w2, tie, l1 + l2))
        tie += 1
    return lengths


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical code: per-symbol bit ``lengths`` and ``codes``."""

    lengths: np.ndarray  # uint8, 0 for unused symbols
    codes: np.ndarray  # uint32, canonical MSB-first codes

    @property
    def alphabet_size(self) -> int:
        return self.lengths.size

    @property
    def max_length(self) -> int:
        return int(self.lengths.max(initial=0))

    _LEN_FIELD_BITS = 5  # enough for MAX_BITS == 16

    def to_bytes(self) -> bytes:
        """Serialize as alphabet size + 5-bit-packed per-symbol lengths.

        The dense packed form costs ``ceil(5·size/8)`` bytes — far below
        the per-used-symbol record format for typical alphabets, which
        matters because every compressed block/plane carries its tables.
        Memoized on the instance (immutable), so the per-frame cost with
        a context code cache is one dict/attribute lookup, not a packing
        pass.
        """
        cached = getattr(self, "_to_bytes_cache", None)
        if cached is None:
            from repro.compress.bitio import pack_values

            packed, _ = pack_values(
                self.lengths.astype(np.uint64),
                np.full(
                    self.lengths.size, self._LEN_FIELD_BITS, dtype=np.int64
                ),
            )
            cached = struct.pack("<I", self.lengths.size) + packed
            object.__setattr__(self, "_to_bytes_cache", cached)
        return cached

    @classmethod
    def from_bytes(cls, payload: bytes, offset: int = 0) -> tuple["HuffmanCode", int]:
        """Deserialize; returns the code and the offset past it."""
        if len(payload) < offset + 4:
            raise CodecError("huffman: truncated code table header")
        (size,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if size > 65536:
            raise CodecError("huffman: implausible code table size")
        nbytes = (size * cls._LEN_FIELD_BITS + 7) // 8
        if len(payload) < offset + nbytes:
            raise CodecError("huffman: truncated code table body")
        buf = np.frombuffer(payload, dtype=np.uint8, count=nbytes, offset=offset)
        bits = np.unpackbits(buf)[: size * cls._LEN_FIELD_BITS]
        weights = 1 << np.arange(cls._LEN_FIELD_BITS - 1, -1, -1)
        lengths = (
            bits.reshape(size, cls._LEN_FIELD_BITS).astype(np.uint16) @ weights
        ).astype(np.uint8)
        if size and lengths.max(initial=0) > MAX_BITS:
            raise CodecError("huffman: invalid code length in table")
        return cls.from_lengths(lengths), offset + nbytes

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCode":
        """Assign canonical codes (shorter first, then symbol order)."""
        lengths = np.asarray(lengths, dtype=np.uint8)
        codes = np.zeros(lengths.size, dtype=np.uint32)
        code = 0
        prev_len = 0
        order = np.lexsort((np.arange(lengths.size), lengths))
        for s in order:
            ln = int(lengths[s])
            if ln == 0:
                continue
            code <<= ln - prev_len
            codes[s] = code
            code += 1
            prev_len = ln
        if prev_len and code > (1 << prev_len):
            raise CodecError("huffman: over-subscribed code lengths")
        return cls(lengths=lengths, codes=codes)

    def decode_tables(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(symbol, length)`` lookup tables indexed by a peeked window.

        Memoized: the tables are built once per code instance and reused
        by every subsequent decode (the instance is immutable).  Combined
        with :meth:`CodecContext.huffman_from_bytes` deduplication this
        yields one build per *distinct* table across a whole time series.
        """
        cached = getattr(self, "_decode_tables_cache", None)
        if cached is None:
            cached = self._build_decode_tables()
            object.__setattr__(self, "_decode_tables_cache", cached)
        return cached

    def packed_decode_table(self) -> tuple[np.ndarray, int]:
        """``(symbol << 5 | length)`` per peeked window, plus the width.

        Derived from :meth:`decode_tables` (and memoized the same way);
        fusing both lookups into one ``uint32`` gather halves the table
        reads in the interleaved decoder's lockstep loop.  Length fits in
        5 bits (:data:`MAX_BITS` is 16); unused windows pack to 0.
        """
        cached = getattr(self, "_packed_table_cache", None)
        if cached is None:
            lut_sym, lut_len, width = self.decode_tables()
            cached = ((lut_sym << np.uint32(5)) | lut_len, width)
            object.__setattr__(self, "_packed_table_cache", cached)
        return cached

    def encode_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """``(codes, lengths)`` emission LUTs indexed by symbol.

        The encode-side mirror of :meth:`decode_tables`: ``codes`` is
        ``uint32`` and ``lengths`` ``int64`` (the dtypes the packing
        kernel consumes directly, so a symbol gather is the only work per
        emitted code word).  Memoized on the instance; combined with
        :meth:`CodecContext.code_for_freqs` deduplication this is one
        build per *distinct* code across a whole time series.
        """
        cached = getattr(self, "_encode_tables_cache", None)
        if cached is None:
            global ENCODE_TABLE_BUILDS
            ENCODE_TABLE_BUILDS += 1
            cached = (
                np.ascontiguousarray(self.codes, dtype=np.uint32),
                self.lengths.astype(np.int64),
            )
            object.__setattr__(self, "_encode_tables_cache", cached)
        return cached

    def _build_decode_tables(self) -> tuple[np.ndarray, np.ndarray, int]:
        global TABLE_BUILDS
        TABLE_BUILDS += 1
        width = max(self.max_length, 1)
        lut_sym = np.zeros(1 << width, dtype=np.uint32)
        lut_len = np.zeros(1 << width, dtype=np.uint32)
        for s in np.flatnonzero(self.lengths):
            ln = int(self.lengths[s])
            base = int(self.codes[s]) << (width - ln)
            span = 1 << (width - ln)
            lut_sym[base : base + span] = s
            lut_len[base : base + span] = ln
        return lut_sym, lut_len, width


def build_code(freqs: np.ndarray, max_bits: int = MAX_BITS) -> HuffmanCode:
    """Build a canonical, length-limited code for ``freqs``.

    Length limiting flattens the frequency distribution (halving with a
    floor of 1) and rebuilds until the deepest code fits — a standard
    zlib-style fallback that costs at most a few percent of optimality.
    """
    freqs = np.asarray(freqs, dtype=np.int64).copy()
    if freqs.ndim != 1:
        raise ValueError("freqs must be 1-D")
    while True:
        lengths = _huffman_lengths(freqs)
        if lengths.max(initial=0) <= max_bits:
            return HuffmanCode.from_lengths(lengths)
        nz = freqs > 0
        freqs[nz] = (freqs[nz] + 1) >> 1


def encode_symbols(symbols: np.ndarray, code: HuffmanCode) -> tuple[bytes, int]:
    """Encode a symbol array; returns ``(payload, nbits)``."""
    symbols = np.asarray(symbols)
    if symbols.size and (
        symbols.min() < 0 or symbols.max() >= code.alphabet_size
    ):
        raise ValueError("symbol out of alphabet range")
    codes_lut, lens_lut = code.encode_tables()
    lens = lens_lut[symbols]
    if symbols.size and not lens.all():
        raise ValueError("symbol has no assigned code")
    return pack_values(codes_lut[symbols], lens)


def decode_symbols(
    payload: bytes, nbits: int, count: int, code: HuffmanCode
) -> np.ndarray:
    """Decode exactly ``count`` symbols from a packed payload."""
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    bits = unpack_bits(payload, nbits)
    lut_sym, lut_len, width = code.decode_tables()
    windows = sliding_code_windows(bits, width)
    out = np.empty(count, dtype=np.uint32)
    pos = 0
    limit = nbits
    # Per-symbol loop: one table peek + one advance. Hot path — keep locals.
    win = windows
    lsym = lut_sym
    llen = lut_len
    for i in range(count):
        if pos >= limit:
            raise CodecError("huffman: bit stream exhausted")
        w = win[pos]
        ln = llen[w]
        if ln == 0:
            raise CodecError("huffman: invalid code word")
        out[i] = lsym[w]
        pos += ln
    if pos > limit:
        raise CodecError("huffman: bit stream overrun")
    return out


# -- interleaved lanes --------------------------------------------------------


def _lane_count(count: int, lanes: int | None) -> int:
    if lanes is not None:
        if not 1 <= lanes <= 255:
            raise ValueError("lanes must be in 1..255")
        return lanes
    # one lane per ~8 symbols up to the default, so tiny streams don't pay
    # per-lane header overhead for nothing
    return max(1, min(DEFAULT_LANES, (count + 7) // 8))


def interleave_entries(
    symbols: np.ndarray, code: HuffmanCode, lanes: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Lane-deal ``symbols`` into flat ``(value, bit-width)`` entry arrays.

    Returns ``(values, widths, lane_nbits, k, body_len)``: packing the
    entries MSB-first yields exactly the interleaved-lane *body* (each
    lane byte-aligned by a trailing zero-valued pad entry).  Split out of
    :func:`encode_interleaved` so a caller can concatenate the entries of
    several streams and pay for one packing pass — the JPEG encoder packs
    a plane's DC lanes, AC lanes and amplitude stream in one go, slicing
    the bodies back apart at their (byte-aligned) boundaries.  Symbols
    are assumed validated against ``code``.
    """
    n = symbols.size
    k = _lane_count(n, lanes)
    codes_lut, lens_lut = code.encode_tables()
    # Lane l gets symbols l, l+k, l+2k, ...  Viewing the (zero-padded)
    # symbol sequence as a (g, k) grid, lane l is column l, so the
    # lane-major entry layout is just the transposed grid plus one pad
    # column: everything below is whole-grid gathers and row reductions,
    # no per-symbol permutation vector.  Grid slots past the sequence end
    # (short lanes' tails) become width-0 entries, which contribute no
    # bits; they sit between a short lane's last symbol and its pad
    # entry, which is equally harmless.
    base, rem = divmod(n, k)
    g = base + (1 if rem else 0)  # grid columns per lane
    if rem:
        spad = np.zeros(g * k, dtype=symbols.dtype)
        spad[:n] = symbols
    else:
        spad = symbols
    sview = spad.reshape(g, k).T  # (k, g), no copy
    values = np.empty(k * (g + 1), dtype=np.uint32)
    widths = np.empty(k * (g + 1), dtype=np.int64)
    v2d = values.reshape(k, g + 1)
    w2d = widths.reshape(k, g + 1)
    v2d[:, :g] = codes_lut[sview]
    w2d[:, :g] = lens_lut[sview]
    if rem:
        # the padded tail slots of the short lanes carry nothing
        v2d[rem:, g - 1] = 0
        w2d[rem:, g - 1] = 0
    lane_nbits = w2d[:, :g].sum(axis=1)
    pads = (-lane_nbits) % 8
    v2d[:, g] = 0
    w2d[:, g] = pads
    body_len = int((lane_nbits + pads).sum()) >> 3
    return values, widths, lane_nbits, k, body_len


def interleave_header(lane_nbits: np.ndarray, k: int, body_len: int) -> bytes:
    """Header bytes for an interleaved-lane blob (see the layout below)."""
    size = 2 if int(lane_nbits.max(initial=0)) < 1 << 16 else 4
    return (
        # wire: interleave-k-size (one-sided byte-indexed decoder)
        struct.pack("<BB", k, size)
        + lane_nbits.astype(f"<u{size}").tobytes()
        + struct.pack("<I", body_len)
    )


def encode_interleaved(
    symbols: np.ndarray, code: HuffmanCode, lanes: int | None = None
) -> bytes:
    """Encode as a self-describing interleaved-lane blob.

    Symbol ``i`` goes to lane ``i % K``; each lane is packed separately and
    byte-aligned.  Layout::

        u8 K | u8 S | K x uS lane_nbits | u32 body_len | lane payloads

    where ``S`` (2 or 4) is the byte width of the per-lane bit counts —
    short streams (every lane under 64 Kibit, i.e. all of JPEG's) pay 2
    bytes per lane of header, only the huge BZIP block streams pay 4.
    ``count`` is *not* stored — the caller's container knows it, exactly
    as with :func:`encode_symbols`.
    """
    symbols = np.asarray(symbols)
    n = symbols.size
    if n and (symbols.min() < 0 or symbols.max() >= code.alphabet_size):
        raise ValueError("symbol out of alphabet range")
    if n and not code.encode_tables()[1][symbols].all():
        raise ValueError("symbol has no assigned code")
    values, widths, lane_nbits, k, body_len = interleave_entries(
        symbols, code, lanes
    )
    body, _ = pack_values(values, widths)
    return interleave_header(lane_nbits, k, body_len) + body


def decode_interleaved(
    payload, offset: int, count: int, code: HuffmanCode
) -> tuple[np.ndarray, int]:
    """Decode a blob written by :func:`encode_interleaved`.

    Returns ``(symbols, offset_past_blob)``.  All lanes advance together:
    each loop iteration performs one vectorized table gather for every
    still-active lane, so the Python iteration count is
    ``ceil(count / K)`` instead of ``count``.
    """
    if len(payload) < offset + 2:
        raise CodecError("huffman: truncated interleave header")
    k = payload[offset]
    if k < 1:
        raise CodecError("huffman: bad lane count")
    entry = payload[offset + 1]
    if entry not in (2, 4):
        raise CodecError("huffman: bad lane header entry size")
    head_end = offset + 2 + entry * k + 4
    if len(payload) < head_end:
        raise CodecError("huffman: truncated interleave header")
    lane_nbits = np.frombuffer(
        payload, dtype=f"<u{entry}", count=k, offset=offset + 2
    ).astype(np.int64)
    (body_len,) = struct.unpack_from("<I", payload, head_end - 4)
    if len(payload) < head_end + body_len:
        raise CodecError("huffman: truncated interleave body")
    end = head_end + body_len

    lane_bytes = (lane_nbits + 7) >> 3
    if int(lane_bytes.sum()) != body_len:
        raise CodecError("huffman: interleave body length mismatch")
    if count == 0:
        if int(lane_nbits.sum()) != 0:
            raise CodecError("huffman: symbol count mismatch")
        return np.zeros(0, dtype=np.uint32), end

    body = np.frombuffer(payload, dtype=np.uint8, count=body_len, offset=head_end)
    bits = np.unpackbits(body)
    lut, width = code.packed_decode_table()
    windows = sliding_code_windows(bits, width)
    if windows.size == 0:
        raise CodecError("huffman: bit stream exhausted")

    lane_starts = 8 * np.concatenate(
        [[0], np.cumsum(lane_bytes[:-1])]
    ).astype(np.int64)
    pos = lane_starts.copy()
    ends = lane_starts + lane_nbits
    # Translate every window through the packed LUT up front; the lockstep
    # loop then gathers pre-decoded (symbol << 5 | length) entries straight
    # into rows of ``ent``, advancing via the low bits — three kernel
    # dispatches per iteration.  The loop body carries no validity checks:
    # a corrupt lane either stalls (length-0 entry) or walks off its
    # segment, and the ``take`` clamp plus the exact end-position equality
    # test afterwards catches every such case.
    lutw = lut[windows]
    full = count // k
    m = count - full * k
    ent = np.empty((full + (1 if m else 0), k), dtype=np.uint32)
    step = np.empty(k, dtype=np.uint32)
    mask = np.uint32(31)
    for i in range(full):
        row = ent[i]
        lutw.take(pos, mode="clip", out=row)
        np.bitwise_and(row, mask, out=step)
        pos += step
    if m:
        row = ent[full, :m]
        lutw.take(pos[:m], mode="clip", out=row)
        pos[:m] += row & mask
    if (pos != ends).any():
        raise CodecError("huffman: bit stream corrupt or truncated")
    ent >>= np.uint32(5)
    return ent.reshape(-1)[:count], end
