"""Persistent codec contexts: cross-frame caches for the decode fast path.

The frames of a time series are compressed independently, but in practice
their entropy-coding side tables barely change: a smooth animation re-derives
near-identical Huffman code tables frame after frame, the JPEG quantization
matrices are a pure function of the quality knob, and every frame needs the
same scratch arrays.  The paper's display workstation must decompress at the
arrival rate of the stream (§4.2, Table 2), so rebuilding those structures
per frame is pure waste on the critical path.

The same argument holds in reverse on the encode side: the serve layer's
cold cache fills re-derive near-identical Huffman codes from near-identical
symbol statistics, and every plane needs the same block/bit scratch.  A
:class:`CodecContext` therefore owns caches for both directions, each keyed
on *content*, never on frame identity:

- **Huffman codes** keyed by their serialized table bytes — two planes (or
  two frames) carrying byte-identical tables share one
  :class:`~repro.compress.huffman.HuffmanCode` instance, and therefore one
  decode lookup table (the LUT itself is memoized on the instance).
- **Huffman codes by frequency table** (:meth:`CodecContext.code_for_freqs`)
  — the encoder-side dual of the above: identical symbol statistics reuse
  one code instance and its memoized emission LUTs.
- **Quantization matrices** keyed by JPEG quality.
- **Scratch buffers** keyed by ``(tag, shape, dtype)`` and **bit sinks**
  keyed by tag — reusable work arrays for the entropy coders so
  steady-state encoding and decoding allocate nothing large.

Contexts are deliberately dumb: plain dicts with a size cap and hit/build
counters (``stats``), safe to share across every codec of one connection.
Sharing a context across *threads* decoding concurrently is not supported;
give each decoding thread its own.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError

__all__ = ["CodecContext"]


class CodecContext:
    """Reusable decode-side state shared across the frames of a stream.

    Parameters
    ----------
    max_codes:
        Cap on cached Huffman codes (FIFO eviction).  Each entry costs a
        few KB (code arrays plus its memoized decode LUT).
    max_buffers:
        Cap on pooled scratch buffers.
    """

    def __init__(self, max_codes: int = 256, max_buffers: int = 32):
        self.max_codes = max_codes
        self.max_buffers = max_buffers
        self._codes: dict[bytes, object] = {}
        self._freq_codes: dict[bytes, object] = {}
        self._quant: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._buffers: dict[tuple, np.ndarray] = {}
        self._sinks: dict[str, object] = {}
        self.stats = {
            "huffman_code_builds": 0,
            "huffman_code_hits": 0,
            "quant_builds": 0,
            "quant_hits": 0,
            "buffer_allocs": 0,
            "buffer_hits": 0,
            "encode_code_builds": 0,
            "encode_code_hits": 0,
        }

    # -- Huffman code tables ------------------------------------------------

    def huffman_from_bytes(self, payload, offset: int = 0):
        """Like :meth:`HuffmanCode.from_bytes`, but deduplicated.

        Returns ``(code, offset_past_table)``.  Identical serialized tables
        (the common case across the frames of a time series) resolve to one
        shared, LUT-memoized instance.
        """
        from repro.compress.huffman import HuffmanCode

        if len(payload) < offset + 4:
            raise CodecError("huffman: truncated code table header")
        (size,) = struct.unpack_from("<I", payload, offset)
        if size > 65536:
            raise CodecError("huffman: implausible code table size")
        nbytes = (size * HuffmanCode._LEN_FIELD_BITS + 7) // 8
        end = offset + 4 + nbytes
        key = bytes(payload[offset:end])
        code = self._codes.get(key)
        if code is not None:
            self.stats["huffman_code_hits"] += 1
            return code, end
        code, parsed_end = HuffmanCode.from_bytes(payload, offset)
        if parsed_end != end:  # pragma: no cover - defensive
            raise CodecError("huffman: inconsistent table length")
        self.stats["huffman_code_builds"] += 1
        if len(self._codes) >= self.max_codes:
            self._codes.pop(next(iter(self._codes)))
        self._codes[key] = code
        return code, end

    def code_for_freqs(self, freqs: np.ndarray):
        """Like :func:`~repro.compress.huffman.build_code`, memoized.

        Keyed on the frequency table bytes: a smooth animation presents
        near-identical symbol statistics frame after frame, so the heap
        construction (the only remaining per-plane Python loop on the
        encode path) collapses to a dict hit in steady state.  The
        returned instance carries its memoized encode/decode LUTs.
        """
        from repro.compress.huffman import build_code

        freqs = np.ascontiguousarray(freqs, dtype=np.int64)
        key = freqs.tobytes()
        code = self._freq_codes.get(key)
        if code is not None:
            self.stats["encode_code_hits"] += 1
            return code
        code = build_code(freqs)
        self.stats["encode_code_builds"] += 1
        if len(self._freq_codes) >= self.max_codes:
            self._freq_codes.pop(next(iter(self._freq_codes)))
        self._freq_codes[key] = code
        return code

    # -- quantization matrices ---------------------------------------------

    def quant_tables(self, quality: int) -> tuple[np.ndarray, np.ndarray]:
        """JPEG luma/chroma quantization matrices, cached per quality."""
        tables = self._quant.get(quality)
        if tables is not None:
            self.stats["quant_hits"] += 1
            return tables
        from repro.compress.dct import quant_tables

        tables = quant_tables(quality)
        self.stats["quant_builds"] += 1
        self._quant[quality] = tables
        return tables

    # -- scratch buffers ----------------------------------------------------

    def scratch(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable array for ``(tag, shape, dtype)``.

        Contents are arbitrary on return — callers that need zeros must
        ``fill(0)`` themselves.  The buffer stays owned by the context, so
        callers must not hand it to user code; copy anything that outlives
        the current decode call.
        """
        key = (tag, tuple(shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is not None:
            self.stats["buffer_hits"] += 1
            return buf
        buf = np.empty(shape, dtype=dtype)
        self.stats["buffer_allocs"] += 1
        if len(self._buffers) >= self.max_buffers:
            self._buffers.pop(next(iter(self._buffers)))
        self._buffers[key] = buf
        return buf

    def bitsink(self, tag: str):
        """A reusable :class:`~repro.compress.bitio.BitSink` for ``tag``.

        Returned cleared; the backing buffer persists across frames so
        steady-state encoding never re-grows it.  Same ownership rules as
        :meth:`scratch`.
        """
        from repro.compress.bitio import BitSink

        sink = self._sinks.get(tag)
        if sink is None:
            sink = BitSink()
            self._sinks[tag] = sink
        sink.clear()
        return sink

    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache across all three caches.

        1.0 means steady state (no table was rebuilt, no buffer
        reallocated); 0.0 on a fresh context.  The serving layer exports
        this per viewer session via ``ServeStats``.
        """
        hits = (
            self.stats["huffman_code_hits"]
            + self.stats["quant_hits"]
            + self.stats["buffer_hits"]
            + self.stats["encode_code_hits"]
        )
        builds = (
            self.stats["huffman_code_builds"]
            + self.stats["quant_builds"]
            + self.stats["buffer_allocs"]
            + self.stats["encode_code_builds"]
        )
        total = hits + builds
        return hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached table and buffer (stats are kept)."""
        self._codes.clear()
        self._freq_codes.clear()
        self._quant.clear()
        self._buffers.clear()
        self._sinks.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CodecContext codes={len(self._codes)} "
            f"quant={len(self._quant)} buffers={len(self._buffers)}>"
        )
