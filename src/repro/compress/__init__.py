"""Image and byte-stream compression substrate.

The paper's image-output stage depends on three codecs — LZO (fast
LZ77-family lossless), BZIP (Burrows-Wheeler block-sorting lossless) and
baseline JPEG (lossy transform coding) — plus their two-phase combinations
``JPEG+LZO`` and ``JPEG+BZIP`` (Table 1).  All of them are implemented here
from scratch on top of shared bit-I/O and entropy-coding primitives.

Public entry points:

- :class:`~repro.compress.base.Codec` — the codec interface.
- :func:`~repro.compress.base.get_codec` / ``register_codec`` — registry
  keyed by the names the paper uses (``"raw"``, ``"lzo"``, ``"bzip"``,
  ``"jpeg"``, ``"jpeg+lzo"``, ``"jpeg+bzip"``).
- :mod:`~repro.compress.metrics` — compression ratio and PSNR helpers.
"""

from repro.compress.base import (
    Codec,
    CodecError,
    LosslessCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.compress.rle import RLECodec
from repro.compress.lzo import LZOCodec
from repro.compress.bzip import BZIPCodec
from repro.compress.deflate import DeflateCodec
from repro.compress.jpeg import JPEGCodec
from repro.compress.two_phase import TwoPhaseCodec
from repro.compress.framediff import FrameDifferencingCodec
from repro.compress.metrics import compression_ratio, percent_reduction, psnr
from repro.compress.analysis import (
    estimate_compressed_bytes,
    frame_statistics,
    pixel_coverage,
    shannon_entropy_bits,
)

__all__ = [
    "Codec",
    "CodecError",
    "LosslessCodec",
    "RLECodec",
    "LZOCodec",
    "BZIPCodec",
    "DeflateCodec",
    "JPEGCodec",
    "TwoPhaseCodec",
    "FrameDifferencingCodec",
    "available_codecs",
    "get_codec",
    "register_codec",
    "compression_ratio",
    "percent_reduction",
    "pixel_coverage",
    "shannon_entropy_bits",
    "estimate_compressed_bytes",
    "frame_statistics",
    "psnr",
]
