"""Two-phase compression: JPEG followed by a lossless pass.

The paper's key Table 1 finding: "using either LZO or BZIP to compress the
output of JPEG can result in additional compression which may lead to the
key reduction required for achieving the desired frame rates … We thus use
this two-phase compression approach in our display system."  The JPEG
payload still contains structure (Huffman tables, headers, correlated
payload bytes) that a general-purpose lossless pass can squeeze by ~10–20%.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import Codec, LosslessCodec, register_codec
from repro.compress.bzip import BZIPCodec
from repro.compress.context import CodecContext
from repro.compress.jpeg import JPEGCodec
from repro.compress.lzo import LZOCodec

__all__ = ["TwoPhaseCodec"]


class TwoPhaseCodec(Codec):
    """A lossy first stage whose payload is re-compressed losslessly.

    The registry exposes the paper's two combinations as ``"jpeg+lzo"``
    and ``"jpeg+bzip"``; arbitrary stages can be composed directly.  A
    shared :class:`~repro.compress.context.CodecContext` (given at
    construction or via :meth:`use_context`) is threaded through to every
    stage that supports one, so both phases reuse the same cached Huffman
    tables and scratch buffers across frames.
    """

    def __init__(
        self,
        first: Codec,
        second: LosslessCodec,
        context: CodecContext | None = None,
    ):
        if not second.lossless:
            raise ValueError("second stage must be lossless")
        self.first = first
        self.second = second
        self.name = f"{first.name}+{second.name}"
        self.lossless = first.lossless
        if context is not None:
            self.use_context(context)

    def use_context(self, context: CodecContext) -> None:
        """Share one codec context across both stages."""
        for stage in (self.first, self.second):
            if hasattr(stage, "use_context"):
                stage.use_context(context)

    def encode(self, data: bytes) -> bytes:
        return self.second.encode(self.first.encode(data))

    def decode(self, payload: bytes) -> bytes:
        return self.first.decode(self.second.decode(payload))

    def encode_image(self, image: np.ndarray) -> bytes:
        return self.second.encode(self.first.encode_image(image))

    def decode_image(self, payload: bytes) -> np.ndarray:
        return self.first.decode_image(self.second.decode(payload))


def _jpeg_lzo(
    quality: int = 75,
    level: int = 1,
    context: CodecContext | None = None,
    **kw,
) -> TwoPhaseCodec:
    return TwoPhaseCodec(
        JPEGCodec(quality=quality, **kw), LZOCodec(level=level), context=context
    )


def _jpeg_bzip(
    quality: int = 75,
    block_size: int = 512 * 1024,
    context: CodecContext | None = None,
    **kw,
) -> TwoPhaseCodec:
    return TwoPhaseCodec(
        JPEGCodec(quality=quality, **kw),
        BZIPCodec(block_size=block_size),
        context=context,
    )


register_codec("jpeg+lzo", _jpeg_lzo)
register_codec("jpeg+bzip", _jpeg_bzip)
