"""Runtime (co-processing) vs post-processing visualization — §1's choice.

The paper motivates its post-processing design by arguing that runtime
visualization, although attractive ("users receive immediate feedback …
the visualization results can be stored rather than the much larger raw
data"), is often unacceptable because it means "competing with the
numerical simulation to perform visualization calculations for computing
time and memory space on the same parallel supercomputer".

This module quantifies that trade-off with the discrete-event engine.
Three scenarios over the same machine and dataset:

- ``postprocess`` — the paper's design: the simulation owns all P
  processors; volumes go to mass storage; visualization happens later on
  a viz partition (its cost reported separately, pipelined per
  :mod:`repro.core.pipeline`).
- ``coprocess-share`` — after every simulation step, rendering borrows
  the whole machine (simulation stalls for the render).
- ``coprocess-partition`` — a static split: P_sim processors simulate
  while P_viz processors render each step as it appears.

Outputs per scenario: simulation completion time, last-frame time, and
the simulation slowdown factor relative to an undisturbed run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import FrameRecord, RenderingMetrics
from repro.sim.cluster import MachineSpec
from repro.sim.costs import DatasetProfile
from repro.sim.engine import Simulator
from repro.sim.resources import Pipe

__all__ = ["CoprocessConfig", "CoprocessResult", "simulate_scenario"]


@dataclass(frozen=True)
class CoprocessConfig:
    """A runtime-visualization experiment.

    ``sim_step_seconds`` is the simulation's own time per step when it
    owns all ``n_procs`` processors; it scales inversely with the
    processors actually granted (strong-scaling idealization, which
    favors co-processing — the conclusion holds anyway).
    """

    n_procs: int
    n_steps: int
    profile: DatasetProfile
    machine: MachineSpec
    sim_step_seconds: float
    image_size: tuple[int, int] = (256, 256)
    viz_procs: int = 8  # partition size in 'coprocess-partition'

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.sim_step_seconds <= 0:
            raise ValueError("sim_step_seconds must be positive")
        if not 1 <= self.viz_procs < self.n_procs:
            raise ValueError("viz_procs must be in [1, n_procs)")

    @property
    def pixels(self) -> int:
        return self.image_size[0] * self.image_size[1]


@dataclass(frozen=True)
class CoprocessResult:
    scenario: str
    simulation_time: float
    simulation_slowdown: float
    metrics: RenderingMetrics | None

    @property
    def last_frame_time(self) -> float:
        return self.metrics.overall_time if self.metrics else float("nan")


def _render_seconds(config: CoprocessConfig, procs: int) -> float:
    costs = config.machine.costs
    return costs.group_render_s(
        config.profile, config.pixels, procs
    ) + costs.composite_s(config.pixels, procs)


def simulate_scenario(config: CoprocessConfig, scenario: str) -> CoprocessResult:
    """Run one scenario; deterministic."""
    baseline = config.n_steps * config.sim_step_seconds
    if scenario == "postprocess":
        # Simulation undisturbed; it only pays the volume dump to storage.
        dump = config.machine.costs.volume_read_s(config.profile)
        sim_time = config.n_steps * (config.sim_step_seconds + dump)
        return CoprocessResult(
            scenario=scenario,
            simulation_time=sim_time,
            simulation_slowdown=sim_time / baseline,
            metrics=None,
        )
    if scenario == "coprocess-share":
        # Simulation and rendering strictly alternate on all P procs.
        render = _render_seconds(config, config.n_procs)
        frames = []
        now = 0.0
        for t in range(config.n_steps):
            now += config.sim_step_seconds
            start = now
            now += render
            frames.append(
                FrameRecord(
                    time_step=t, group=0, render_start=start,
                    render_end=now, displayed=now,
                )
            )
        sim_time = now
        return CoprocessResult(
            scenario=scenario,
            simulation_time=sim_time,
            simulation_slowdown=sim_time / baseline,
            metrics=RenderingMetrics.from_frames(frames),
        )
    if scenario == "coprocess-partition":
        return _simulate_partitioned(config, baseline)
    raise ValueError(f"unknown scenario {scenario!r}")


def _simulate_partitioned(
    config: CoprocessConfig, baseline: float
) -> CoprocessResult:
    """Static split: simulation slowed by its smaller share, renderer
    pipelined on the viz partition (DES: the render stage can lag and
    buffer behind a fast simulation)."""
    sim = Simulator()
    sim_procs = config.n_procs - config.viz_procs
    step_s = config.sim_step_seconds * config.n_procs / sim_procs
    render_s = _render_seconds(config, config.viz_procs)
    handoff = Pipe(sim, capacity=2)  # small staging buffer in memory
    frames: list[FrameRecord] = []
    state = {"sim_done": 0.0}

    def simulation():
        for t in range(config.n_steps):
            yield sim.timeout(step_s)
            yield handoff.put((t, sim.now))
        state["sim_done"] = sim.now

    def renderer():
        for _ in range(config.n_steps):
            get = handoff.get()
            yield get
            t, _produced = get.value
            start = sim.now
            yield sim.timeout(render_s)
            frames.append(
                FrameRecord(
                    time_step=t, group=0, render_start=start,
                    render_end=sim.now, displayed=sim.now,
                )
            )

    sim.process(simulation())
    sim.process(renderer())
    sim.run()
    return CoprocessResult(
        scenario="coprocess-partition",
        simulation_time=state["sim_done"],
        simulation_slowdown=state["sim_done"] / baseline,
        metrics=RenderingMetrics.from_frames(frames),
    )
