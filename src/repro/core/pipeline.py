"""Discrete-event simulation of the four-stage rendering pipeline.

This is the timing engine behind Figures 6–9 and 11: P processors in L
groups, per-group double-buffered data input from a shared storage path,
local rendering + binary-swap compositing, and an image-output stage that
is either local storage (batch mode), remote X display, or the
compression-based display daemon — with the WAN route and the single
display client modeled as contended resources.

Frames are displayed strictly in time-step order (the animation the user
watches), so a late frame stalls its successors exactly as a real
in-order display would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import FrameRecord, RenderingMetrics
from repro.core.partitioning import PartitionPlan
from repro.sim.cluster import MachineSpec, WanRoute
from repro.sim.costs import CostModel, DatasetProfile
from repro.sim.engine import Simulator
from repro.sim.resources import Pipe, Resource

__all__ = ["PipelineConfig", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """One pipeline experiment.

    ``transport``:

    - ``"store"`` — batch mode: frames written to facility storage
      (Figures 6/7);
    - ``"x"`` — remote X display: raw 24-bit frames over ``route``;
    - ``"daemon"`` — compression-based display daemon: JPEG+LZO-sized
      payloads over ``route``, decompressed on ``client``.

    ``n_pieces`` > 1 selects parallel compression (per-strip sub-images).
    ``input_buffer`` is the per-group prefetch depth (1 = double
    buffering, the paper's pipelining).

    ``io_servers`` models the §7.1 future-work extension: "Parallel I/O,
    if available, can be incorporated into the pipeline rendering process
    quite straightforwardly, and would improve the overall system
    performance."  With N > 1 servers the storage path serves N volume
    reads concurrently (striped mass storage / MPI-2 collective I/O) and
    each stream sees only its own server's read-ahead (no interleaving
    interference).
    """

    n_procs: int
    n_groups: int
    n_steps: int
    profile: DatasetProfile
    machine: MachineSpec
    image_size: tuple[int, int] = (256, 256)
    transport: str = "store"
    route: WanRoute | None = None
    client: MachineSpec | None = None
    n_pieces: int = 1
    input_buffer: int = 1
    io_servers: int = 1

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.transport not in ("store", "x", "daemon"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.transport in ("x", "daemon") and self.route is None:
            raise ValueError(f"transport {self.transport!r} needs a route")
        if self.input_buffer < 1:
            raise ValueError("input_buffer must be >= 1")
        if self.io_servers < 1:
            raise ValueError("io_servers must be >= 1")
        plan = PartitionPlan(self.n_procs, self.n_groups)  # validates
        needed = self.machine.costs.memory_per_node_bytes(
            self.profile, self.pixels, plan.group_sizes[-1]
        )
        if needed > self.machine.node_memory_bytes:
            raise ValueError(
                f"partitioning infeasible: {needed / 1e6:.0f} MB working set "
                f"per node exceeds the machine's "
                f"{self.machine.node_memory_bytes / 1e6:.0f} MB — the "
                f"paper's memory limit on inter-volume parallelism"
            )

    @property
    def pixels(self) -> int:
        return self.image_size[0] * self.image_size[1]

    @property
    def plan(self) -> PartitionPlan:
        return PartitionPlan(self.n_procs, self.n_groups)


@dataclass
class PipelineResult:
    """Simulation output: metrics plus resource-utilization probes."""

    config: PipelineConfig
    metrics: RenderingMetrics
    storage_utilization: float
    output_utilization: float

    @property
    def overall_time(self) -> float:
        return self.metrics.overall_time

    @property
    def start_up_latency(self) -> float:
        return self.metrics.start_up_latency

    @property
    def inter_frame_delay(self) -> float:
        return self.metrics.inter_frame_delay

    def timeline(self, width: int = 100) -> str:
        """ASCII Gantt chart of this run (see repro.core.timeline)."""
        from repro.core.timeline import render_timeline

        return render_timeline(self, width=width)

    def trace_csv(self) -> str:
        """Machine-readable schedule (step,group,stage,start,end)."""
        from repro.core.timeline import export_trace_csv

        return export_trace_csv(self)


@dataclass
class _FrameState:
    """Mutable per-step timeline filled in by the stage processes."""

    time_step: int
    group: int
    read_start: float = float("nan")
    read_end: float = float("nan")
    render_start: float = float("nan")
    render_end: float = float("nan")
    output_start: float = float("nan")
    displayed: float = float("nan")

    def to_record(self) -> FrameRecord:
        return FrameRecord(
            time_step=self.time_step,
            group=self.group,
            read_start=self.read_start,
            read_end=self.read_end,
            render_start=self.render_start,
            render_end=self.render_end,
            output_start=self.output_start,
            displayed=self.displayed,
        )


def simulate_pipeline(config: PipelineConfig) -> PipelineResult:
    """Run the pipelined schedule; deterministic for a given config."""
    sim = Simulator()
    plan = config.plan
    costs: CostModel = config.machine.costs
    profile = config.profile
    pixels = config.pixels

    # Shared resources: the facility's storage/LAN input path (capacity
    # >1 under the parallel-I/O extension), the output path (storage or
    # WAN), and the single display client.
    storage = Resource(sim, capacity=config.io_servers, name="storage")
    output_path = Resource(sim, capacity=1, name="output")
    client = Resource(sim, capacity=1, name="client")

    frames = {
        t: _FrameState(time_step=t, group=plan.group_of_step(t))
        for t in range(config.n_steps)
    }
    # In-order display: frame t may appear only after frame t-1 did.
    display_done = {t: sim.event() for t in range(-1, config.n_steps)}
    display_done[-1].succeed()

    # With parallel I/O, each server handles at most ceil(L / N) of the
    # group streams, so interleaving interference drops accordingly.
    streams_per_server = -(-config.n_groups // config.io_servers)
    read_s = costs.volume_read_s(profile, concurrent_streams=streams_per_server)

    def reader(group: int, pipe: Pipe):
        g = plan.group_sizes[group]
        dist_s = costs.distribute_s(profile, g)
        for t in plan.steps_of_group(group, config.n_steps):
            state = frames[t]
            req = storage.request()
            yield req
            state.read_start = sim.now
            yield sim.timeout(read_s)
            storage.release()
            # Scatter bricks to the group's nodes (group-internal links).
            yield sim.timeout(dist_s)
            state.read_end = sim.now
            yield pipe.put(t)

    def renderer(group: int, pipe_in: Pipe, pipe_out: Pipe):
        g = plan.group_sizes[group]
        render_s = costs.group_render_s(profile, pixels, g)
        composite_s = costs.composite_s(pixels, g)
        for _ in plan.steps_of_group(group, config.n_steps):
            get = pipe_in.get()
            yield get
            t = get.value
            state = frames[t]
            state.render_start = sim.now
            yield sim.timeout(render_s + composite_s)
            state.render_end = sim.now
            yield pipe_out.put(t)

    def output(group: int, pipe: Pipe):
        for _ in plan.steps_of_group(group, config.n_steps):
            get = pipe.get()
            yield get
            t = get.value
            state = frames[t]
            state.output_start = sim.now
            if config.transport == "daemon":
                # compression runs on the group's own nodes
                yield sim.timeout(costs.compress_s(pixels, config.n_pieces))
                nbytes = costs.compressed_frame_bytes(
                    pixels, profile, config.n_pieces
                )
                yield output_path.request()
                yield sim.timeout(config.route.transfer_s(nbytes))
                output_path.release()
                yield client.request()
                c = config.client if config.client is not None else config.machine
                # decompress constants are client-calibrated (O2 rates)
                decompress = c.costs.decompress_s(pixels, config.n_pieces)
                put = pixels * 3 / c.local_display_bandwidth_Bps
                yield sim.timeout(decompress + c.display_overhead_s + put)
                client.release()
            elif config.transport == "x":
                yield output_path.request()
                yield sim.timeout(config.route.transfer_s(pixels * 3))
                output_path.release()
                yield client.request()
                c = config.client if config.client is not None else config.machine
                put = pixels * 3 / c.local_display_bandwidth_Bps
                yield sim.timeout(c.display_overhead_s + put)
                client.release()
            else:  # store
                yield output_path.request()
                yield sim.timeout(pixels * 3 / costs.io_bandwidth_Bps)
                output_path.release()
            # Enforce in-order appearance of the animation.
            yield display_done[t - 1]
            state.displayed = sim.now
            display_done[t].succeed()

    for group in range(config.n_groups):
        pipe_in = Pipe(sim, capacity=config.input_buffer)
        pipe_out = Pipe(sim, capacity=1)
        sim.process(reader(group, pipe_in))
        sim.process(renderer(group, pipe_in, pipe_out))
        sim.process(output(group, pipe_out))

    horizon = sim.run()
    metrics = RenderingMetrics.from_frames(
        [frames[t].to_record() for t in range(config.n_steps)]
    )
    return PipelineResult(
        config=config,
        metrics=metrics,
        storage_utilization=storage.utilization(horizon),
        output_utilization=output_path.utilization(horizon),
    )
