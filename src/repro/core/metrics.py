"""The three performance metrics of §3.

"There are three potential performance metrics: **start-up latency**, the
time until the rendered image of the first volume appears; **overall
execution time**, the time until the rendered image of the last volume
appears; and **inter-frame delay**, the average time between the
appearance of consecutive rendered images."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FrameRecord", "RenderingMetrics"]


@dataclass(frozen=True)
class FrameRecord:
    """Per-frame timeline of one time step through the pipeline.

    Times are absolute (simulated or wall-clock) seconds; stages that did
    not occur in a given configuration hold ``nan``.
    """

    time_step: int
    group: int
    read_start: float = float("nan")
    read_end: float = float("nan")
    render_start: float = float("nan")
    render_end: float = float("nan")
    output_start: float = float("nan")
    displayed: float = float("nan")

    @property
    def render_seconds(self) -> float:
        return self.render_end - self.render_start

    @property
    def display_seconds(self) -> float:
        """Image-output time: everything after rendering completes."""
        return self.displayed - self.render_end


@dataclass(frozen=True)
class RenderingMetrics:
    """Aggregated metrics over a rendered sequence."""

    start_up_latency: float
    overall_time: float
    inter_frame_delay: float
    frames: tuple[FrameRecord, ...]

    @classmethod
    def from_frames(cls, frames: list[FrameRecord]) -> "RenderingMetrics":
        """Compute the §3 metrics from per-frame display timestamps."""
        if not frames:
            raise ValueError("no frames")
        ordered = sorted(frames, key=lambda f: f.time_step)
        displayed = np.asarray([f.displayed for f in ordered])
        if np.isnan(displayed).any():
            raise ValueError("every frame needs a displayed timestamp")
        start_up = float(displayed[0])
        overall = float(displayed[-1])
        if len(ordered) > 1:
            inter = float(np.mean(np.diff(displayed)))
        else:
            inter = 0.0
        return cls(
            start_up_latency=start_up,
            overall_time=overall,
            inter_frame_delay=inter,
            frames=tuple(ordered),
        )

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def frame_rate(self) -> float:
        """Sustained frames/second (inverse inter-frame delay)."""
        if self.inter_frame_delay <= 0:
            return float("inf")
        return 1.0 / self.inter_frame_delay

    @property
    def mean_render_seconds(self) -> float:
        vals = [f.render_seconds for f in self.frames]
        return float(np.nanmean(vals))

    @property
    def mean_display_seconds(self) -> float:
        vals = [f.display_seconds for f in self.frames]
        return float(np.nanmean(vals))

    def summary(self) -> str:
        return (
            f"frames={self.n_frames} start-up={self.start_up_latency:.3f}s "
            f"overall={self.overall_time:.3f}s "
            f"inter-frame={self.inter_frame_delay:.3f}s "
            f"({self.frame_rate:.2f} fps)"
        )
