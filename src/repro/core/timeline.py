"""ASCII timeline (Gantt) rendering of a simulated pipeline schedule.

Makes the paper's Figure 1 pipelining visible: one row per processor
group, one glyph per time slice, showing how data input (``r``),
rendering (``#``) and image output (``o``) of *different* time steps
overlap — and where a stage starves (idle ``.``).
"""

from __future__ import annotations

from repro.core.metrics import FrameRecord
from repro.core.pipeline import PipelineResult

__all__ = ["render_timeline", "export_trace_csv", "stage_intervals"]

_GLYPHS = {"read": "r", "render": "#", "output": "o", "idle": "."}


def _paint(row: list[str], start: float, end: float, scale: float, glyph: str) -> None:
    a = int(start * scale)
    b = max(int(end * scale), a + 1)
    for i in range(a, min(b, len(row))):
        # rendering wins ties so overlap is visible as the busier stage
        if row[i] == _GLYPHS["idle"] or glyph == "#":
            row[i] = glyph


def stage_intervals(
    result: PipelineResult,
) -> list[tuple[int, int, str, float, float]]:
    """Flatten the schedule into ``(step, group, stage, start, end)`` rows.

    One row per executed stage per frame, sorted by start time — the
    machine-readable counterpart of :func:`render_timeline` for plotting
    or post-hoc queueing analysis.
    """
    rows: list[tuple[int, int, str, float, float]] = []
    for f in result.metrics.frames:
        for stage, start, end in (
            ("input", f.read_start, f.read_end),
            ("render", f.render_start, f.render_end),
            ("output", f.output_start, f.displayed),
        ):
            if start == start and end == end:  # skip NaNs
                rows.append((f.time_step, f.group, stage, start, end))
    rows.sort(key=lambda r: (r[3], r[0]))
    return rows


def export_trace_csv(result: PipelineResult) -> str:
    """The schedule as CSV (``step,group,stage,start,end,duration``)."""
    lines = ["step,group,stage,start,end,duration"]
    for step, group, stage, start, end in stage_intervals(result):
        lines.append(
            f"{step},{group},{stage},{start:.6f},{end:.6f},{end - start:.6f}"
        )
    return "\n".join(lines) + "\n"


def render_timeline(result: PipelineResult, width: int = 100) -> str:
    """Format a pipeline run as one ASCII Gantt row per group.

    ``width`` is the number of character columns for the full duration.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    config = result.config
    horizon = result.metrics.overall_time
    if horizon <= 0:
        raise ValueError("empty schedule")
    scale = width / horizon

    rows = {
        g: [_GLYPHS["idle"]] * width for g in range(config.n_groups)
    }
    for frame in result.metrics.frames:
        row = rows[frame.group]
        _paint(row, frame.read_start, frame.read_end, scale, _GLYPHS["read"])
        _paint(row, frame.render_start, frame.render_end, scale, _GLYPHS["render"])
        _paint(row, frame.output_start, frame.displayed, scale, _GLYPHS["output"])

    lines = [
        f"pipeline timeline: P={config.n_procs} L={config.n_groups} "
        f"steps={config.n_steps} ({horizon:.1f}s across {width} cols; "
        "r=input  #=render  o=output  .=idle)",
    ]
    for g in range(config.n_groups):
        lines.append(f"group {g:3d} |{''.join(rows[g])}|")
    # utilization footer per group (fraction of columns busy)
    busy = [
        sum(1 for c in rows[g] if c != _GLYPHS["idle"]) / width
        for g in range(config.n_groups)
    ]
    lines.append(
        "busy: " + "  ".join(f"g{g}={b * 100:.0f}%" for g, b in enumerate(busy))
    )
    return "\n".join(lines)
