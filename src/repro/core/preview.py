"""Preview and review controls — the paper's §7.1 interaction extensions.

"A mechanism for the user to review previously viewed images and to view
the time steps in some selective fashion should also be incorporated."
And: "certain time steps can be skipped during a previewing mode."

:class:`PreviewPlayer` wraps a :class:`RemoteVisualizationSession` with

- **strided playback** (every k-th step — the previewing mode),
- a **review buffer** of recently displayed frames the user can scrub
  without any WAN traffic,
- **adaptive quality**: when the measured frame interval exceeds the
  target, the player steps the JPEG quality down (and back up when there
  is headroom), trading fidelity for rate like the §4.2 discussion
  suggests.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from repro.core.remote_viz import RemoteVisualizationSession
from repro.daemon.display_interface import ReceivedFrame

__all__ = ["PreviewPlayer"]

_QUALITY_LADDER = (35, 50, 65, 80, 90)


class PreviewPlayer:
    """Interactive playback controls over a live session.

    Parameters
    ----------
    session:
        An open :class:`RemoteVisualizationSession`.
    review_capacity:
        How many displayed frames to keep for local review.
    target_frame_seconds:
        Adaptive-quality target; ``None`` disables adaptation.
    """

    def __init__(
        self,
        session: RemoteVisualizationSession,
        review_capacity: int = 32,
        target_frame_seconds: float | None = None,
    ):
        if review_capacity < 1:
            raise ValueError("review_capacity must be >= 1")
        self.session = session
        self.review_capacity = review_capacity
        self.target_frame_seconds = target_frame_seconds
        self._review: OrderedDict[int, ReceivedFrame] = OrderedDict()
        self._quality_idx = len(_QUALITY_LADDER) - 1
        #: (time_step, frame_seconds, quality) log of played frames
        self.history: list[tuple[int, float, int]] = []

    @property
    def quality(self) -> int:
        return _QUALITY_LADDER[self._quality_idx]

    # -- playback ---------------------------------------------------------------

    def play(self, start: int = 0, stop: int | None = None, stride: int = 1):
        """Play time steps ``start:stop:stride`` (stride > 1 = preview).

        Yields each displayed frame; adapts quality between frames when a
        target interval is configured.
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        stop = stop if stop is not None else self.session.dataset.n_steps
        for t in range(start, stop, stride):
            t0 = time.perf_counter()
            frame = self.session.step(t)
            elapsed = time.perf_counter() - t0
            self._remember(frame)
            self.history.append((t, elapsed, self.quality))
            self._adapt(elapsed)
            yield frame

    def preview(self, stride: int = 4):
        """The §7.1 previewing mode: skip through the dataset quickly."""
        return self.play(stride=stride)

    def _remember(self, frame: ReceivedFrame) -> None:
        self._review[frame.time_step] = frame
        self._review.move_to_end(frame.time_step)
        while len(self._review) > self.review_capacity:
            self._review.popitem(last=False)

    # -- review -----------------------------------------------------------------

    def reviewable_steps(self) -> list[int]:
        """Time steps currently held in the review buffer."""
        return sorted(self._review)

    def review(self, time_step: int) -> ReceivedFrame:
        """Re-display a previously viewed frame — no re-render, no WAN."""
        try:
            return self._review[time_step]
        except KeyError:
            raise KeyError(
                f"step {time_step} not in review buffer "
                f"(available: {self.reviewable_steps()})"
            ) from None

    # -- adaptive quality -----------------------------------------------------------

    def _adapt(self, elapsed: float) -> None:
        if self.target_frame_seconds is None:
            return
        changed = False
        if elapsed > self.target_frame_seconds and self._quality_idx > 0:
            self._quality_idx -= 1
            changed = True
        elif (
            elapsed < 0.5 * self.target_frame_seconds
            and self._quality_idx < len(_QUALITY_LADDER) - 1
        ):
            self._quality_idx += 1
            changed = True
        if changed and self.session.renderer.codec.name.startswith("jpeg"):
            self.session.display.set_codec(
                self.session.renderer.codec.name, quality=self.quality
            )
