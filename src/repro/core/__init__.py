"""The paper's contribution: pipelined, partitioned, remote visualization.

- :mod:`~repro.core.partitioning` — carving P processors into L groups
  (intra- vs inter-volume parallelism, §3);
- :mod:`~repro.core.metrics` — the three §3 performance metrics:
  start-up latency, overall execution time, inter-frame delay;
- :mod:`~repro.core.performance_model` — the closed-form model of the
  companion paper [15] predicting those metrics from (P, L);
- :mod:`~repro.core.pipeline` — the discrete-event simulation of the full
  four-stage pipeline (Figures 6–9, 11);
- :mod:`~repro.core.remote_viz` — the *functional* end-to-end session:
  real renderer → real compositing → real codecs → daemon → display.
"""

from repro.core.partitioning import PartitionPlan, candidate_partitions
from repro.core.metrics import FrameRecord, RenderingMetrics
from repro.core.performance_model import PerformanceModel, predict_metrics
from repro.core.pipeline import PipelineConfig, PipelineResult, simulate_pipeline
from repro.core.remote_viz import RemoteVisualizationSession, SessionReport
from repro.core.preview import PreviewPlayer
from repro.core.coprocess import CoprocessConfig, CoprocessResult, simulate_scenario
from repro.core.timeline import render_timeline
from repro.core.autotune import TunedConfiguration, autotune
from repro.core.analysis import (
    ScalingPoint,
    bottleneck_report,
    control_response_latency,
    strong_scaling,
    weak_scaling,
)
from repro.core.subset_viewing import (
    ClientSideRenderer,
    pack_volume_subset,
    unpack_volume_subset,
)

__all__ = [
    "PartitionPlan",
    "candidate_partitions",
    "FrameRecord",
    "RenderingMetrics",
    "PerformanceModel",
    "predict_metrics",
    "PipelineConfig",
    "PipelineResult",
    "simulate_pipeline",
    "RemoteVisualizationSession",
    "SessionReport",
    "PreviewPlayer",
    "CoprocessConfig",
    "CoprocessResult",
    "simulate_scenario",
    "ClientSideRenderer",
    "pack_volume_subset",
    "unpack_volume_subset",
    "render_timeline",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "bottleneck_report",
    "control_response_latency",
    "TunedConfiguration",
    "autotune",
]
