"""Processor partitioning: P nodes into L groups (§3).

"The third approach is thus a hybrid, in which P processor nodes are
partitioned into L groups (1 < L < P), each of which renders one volume
(i.e. one time step) at a time."  L = 1 degenerates to pure intra-volume
parallelism, L = P to pure inter-volume parallelism; the two extremes are
the paper's first and second approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PartitionPlan", "candidate_partitions"]


@dataclass(frozen=True)
class PartitionPlan:
    """A concrete partitioning of ``n_procs`` into ``n_groups`` groups.

    Groups are balanced: sizes differ by at most one, larger groups
    first.  Time steps are dealt round-robin — group ``g`` renders steps
    ``g, g + L, g + 2L, …`` — which keeps every group's stream evenly
    spaced for the pipelined schedule.
    """

    n_procs: int
    n_groups: int

    def __post_init__(self):
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if not 1 <= self.n_groups <= self.n_procs:
            raise ValueError(
                f"n_groups must be in [1, {self.n_procs}], got {self.n_groups}"
            )

    @property
    def group_sizes(self) -> tuple[int, ...]:
        base, extra = divmod(self.n_procs, self.n_groups)
        return tuple(
            base + (1 if g < extra else 0) for g in range(self.n_groups)
        )

    @property
    def group_size(self) -> int:
        """Largest group size (== all sizes when L divides P)."""
        return self.group_sizes[0]

    @property
    def uniform(self) -> bool:
        return self.n_procs % self.n_groups == 0

    def members(self, group: int) -> range:
        """Processor ranks of ``group`` (contiguous block assignment)."""
        sizes = self.group_sizes
        if not 0 <= group < self.n_groups:
            raise IndexError(f"group {group} out of range")
        start = sum(sizes[:group])
        return range(start, start + sizes[group])

    def group_of_rank(self, rank: int) -> int:
        """Which group a processor rank belongs to."""
        if not 0 <= rank < self.n_procs:
            raise IndexError(f"rank {rank} out of range")
        sizes = self.group_sizes
        acc = 0
        for g, s in enumerate(sizes):
            acc += s
            if rank < acc:
                return g
        raise AssertionError("unreachable")

    def steps_of_group(self, group: int, n_steps: int) -> range:
        """Time steps assigned to ``group`` under round-robin dealing."""
        if not 0 <= group < self.n_groups:
            raise IndexError(f"group {group} out of range")
        return range(group, n_steps, self.n_groups)

    def group_of_step(self, step: int) -> int:
        return step % self.n_groups

    @property
    def kind(self) -> str:
        """Which of the paper's three approaches this plan realizes."""
        if self.n_groups == 1:
            return "intra-volume"
        if self.n_groups == self.n_procs:
            return "inter-volume"
        return "hybrid"


def candidate_partitions(n_procs: int, powers_of_two: bool = True) -> list[int]:
    """Group counts L worth sweeping for a P-processor machine.

    Powers of two (the paper sweeps 1, 2, 4, …, 32 in Figures 6–7) keep
    every group binary-swap-capable when P is itself a power of two;
    with ``powers_of_two=False`` all divisors of P are returned.
    """
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    if powers_of_two:
        out = []
        l = 1
        while l <= n_procs:
            out.append(l)
            l <<= 1
        return out
    return [l for l in range(1, n_procs + 1) if n_procs % l == 0]
