"""Session auto-tuning: pick (L, pieces, quality) for a frame-rate target.

The paper tunes its system by hand across Figures 6–11; a downstream
user wants that closed loop automated: given a machine, a dataset, a WAN
route, a client and a desired frame rate, search the configuration space
with the analytic performance model (O(1) per candidate) and return the
cheapest configuration that meets the target — or the fastest one if
nothing does.

Search space: partition count L (powers of two), parallel-compression
piece count, and JPEG quality (which scales payload size ~linearly in
our calibrated size model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import PartitionPlan, candidate_partitions
from repro.core.performance_model import PerformanceModel
from repro.sim.cluster import MachineSpec, WanRoute
from repro.sim.costs import DatasetProfile

__all__ = ["TunedConfiguration", "autotune"]

#: quality ladder and its approximate payload scale relative to q=75
_QUALITY_SCALE = {35: 0.45, 50: 0.62, 65: 0.82, 75: 1.0, 90: 1.6}


@dataclass(frozen=True)
class TunedConfiguration:
    """The recommendation: configuration + its predicted behaviour."""

    n_groups: int
    n_pieces: int
    quality: int
    predicted_fps: float
    predicted_startup_s: float
    meets_target: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"L={self.n_groups} pieces={self.n_pieces} quality={self.quality} "
            f"-> {self.predicted_fps:.2f} fps (startup {self.predicted_startup_s:.2f}s)"
        )


def autotune(
    machine: MachineSpec,
    profile: DatasetProfile,
    route: WanRoute,
    client: MachineSpec,
    *,
    n_procs: int,
    image_size: tuple[int, int] = (256, 256),
    target_fps: float = 5.0,
    n_steps: int = 100,
    piece_options: tuple[int, ...] = (1, 2, 4, 8),
    quality_options: tuple[int, ...] = (90, 75, 65, 50, 35),
) -> TunedConfiguration:
    """Search (L, pieces, quality) for the target frame rate.

    Preference order among configurations that meet the target: highest
    quality first, then fewest pieces (simplest transport), then the
    fewest groups (lowest start-up latency).  If no configuration meets
    the target, the fastest one is returned with ``meets_target=False``.
    """
    if target_fps <= 0:
        raise ValueError("target_fps must be positive")
    pixels = image_size[0] * image_size[1]
    best_meeting: tuple | None = None
    fastest: tuple | None = None

    for quality in quality_options:
        scale = _QUALITY_SCALE[quality]
        for pieces in piece_options:
            model = PerformanceModel(
                machine=machine,
                profile=profile,
                pixels=pixels,
                transport="daemon",
                route=route,
                client=client,
                n_pieces=pieces,
            )
            for l_groups in candidate_partitions(n_procs):
                plan = PartitionPlan(n_procs, l_groups)
                metrics = model.predict(plan, n_steps)
                # rebuild the steady-state bottleneck with the payload
                # size scaled by the quality setting (transfer is the
                # only quality-dependent stage)
                transfer = route.transfer_s(
                    machine.costs.compressed_frame_bytes(pixels, profile, pieces)
                    * scale
                )
                inter = max(
                    (model.render_s(plan.group_size) + model.compress_s())
                    / l_groups,
                    model.input_s(l_groups, plan.group_size) / l_groups,
                    model.read_s(l_groups),
                    transfer,
                    model.client_s(),
                    1e-6,
                )
                fps = 1.0 / inter
                candidate = (
                    quality,
                    -pieces,
                    -l_groups,
                    TunedConfiguration(
                        n_groups=l_groups,
                        n_pieces=pieces,
                        quality=quality,
                        predicted_fps=fps,
                        predicted_startup_s=metrics.start_up_latency,
                        meets_target=fps >= target_fps,
                    ),
                )
                if fastest is None or fps > fastest[3].predicted_fps:
                    fastest = candidate
                if fps >= target_fps:
                    if best_meeting is None or candidate[:3] > best_meeting[:3]:
                        best_meeting = candidate
    chosen = best_meeting if best_meeting is not None else fastest
    assert chosen is not None
    return chosen[3]
