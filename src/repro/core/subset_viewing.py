"""Client-side rendering from reduced volume data — the other §7.1 mode.

"Instead of sending a single frame for each time step, 'compressed'
subset data can be sent.  This subset data can be either a reduced
version of the data, or a collection of pre-rendered images…"

This module implements the first option (:mod:`repro.render.ibr` is the
second): the server quantizes and downsamples a time step, compresses it
losslessly, and ships it once; a client with "some minimum graphics
capability" then renders *any* view locally with the library's own ray
caster — unlimited interaction for one upload, at reduced-data fidelity.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress import Codec, CodecError, get_codec
from repro.render.camera import Camera
from repro.render.raycast import render_volume
from repro.render.transfer_function import TransferFunction

__all__ = ["pack_volume_subset", "unpack_volume_subset", "ClientSideRenderer"]

_MAGIC = b"RVOL"


def pack_volume_subset(
    volume: np.ndarray,
    *,
    factor: int = 2,
    codec: str | Codec = "bzip",
) -> bytes:
    """Server side: downsample, quantize to 8 bits, compress.

    ``factor`` reduces every grid axis by block averaging (1 = keep full
    resolution); quantization maps [0, 1] scalars onto uint8.  The
    lossless ``codec`` then squeezes the reduced grid — BZIP by default,
    since this path is bandwidth-bound, not latency-bound.
    """
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3-D, got {volume.shape}")
    if factor < 1:
        raise ValueError("factor must be >= 1")
    vol = np.asarray(volume, dtype=np.float32)
    if factor > 1:
        nx, ny, nz = (max(1, s // factor) for s in vol.shape)
        trimmed = vol[: nx * factor, : ny * factor, : nz * factor]
        vol = trimmed.reshape(nx, factor, ny, factor, nz, factor).mean(
            axis=(1, 3, 5)
        )
    quantized = np.clip(np.rint(vol * 255.0), 0, 255).astype(np.uint8)
    codec_obj = get_codec(codec) if isinstance(codec, str) else codec
    if not codec_obj.lossless:
        raise ValueError("subset codec must be lossless (data, not pixels)")
    payload = codec_obj.encode(quantized.tobytes())
    name = codec_obj.name.encode()
    header = _MAGIC + struct.pack(
        "<IIIBB", *quantized.shape, factor, len(name)
    ) + name
    return header + payload


def unpack_volume_subset(payload: bytes) -> tuple[np.ndarray, int]:
    """Client side: invert :func:`pack_volume_subset`.

    Returns ``(volume, factor)`` with the volume as float32 in [0, 1] at
    the reduced resolution.
    """
    if len(payload) < 18 or payload[:4] != _MAGIC:
        raise CodecError("volume subset: bad or truncated header")
    nx, ny, nz, factor, name_len = struct.unpack_from("<IIIBB", payload, 4)
    offset = 4 + 14
    if len(payload) < offset + name_len:
        raise CodecError("volume subset: truncated codec name")
    codec_name = payload[offset : offset + name_len].decode()
    offset += name_len
    raw = get_codec(codec_name).decode(payload[offset:])
    expected = nx * ny * nz
    if len(raw) != expected:
        raise CodecError(
            f"volume subset: {len(raw)} voxels on the wire, expected {expected}"
        )
    vol = np.frombuffer(raw, dtype=np.uint8).reshape(nx, ny, nz)
    return vol.astype(np.float32) / 255.0, factor


class ClientSideRenderer:
    """A client that renders received volume subsets locally.

    Holds the latest unpacked time step; ``render`` produces any view
    with the ordinary ray caster — view changes never touch the WAN.
    """

    def __init__(self, tf: TransferFunction | None = None):
        self.tf = tf if tf is not None else TransferFunction.jet()
        self._volume: np.ndarray | None = None
        self._factor = 1
        #: wire bytes received so far
        self.bytes_received = 0

    def receive(self, payload: bytes) -> None:
        self._volume, self._factor = unpack_volume_subset(payload)
        self.bytes_received += len(payload)

    @property
    def has_data(self) -> bool:
        return self._volume is not None

    @property
    def reduction_factor(self) -> int:
        return self._factor

    def render(self, camera: Camera, **kwargs) -> np.ndarray:
        """Render the current subset volume locally (premultiplied RGBA)."""
        if self._volume is None:
            raise RuntimeError("no volume subset received yet")
        return render_volume(self._volume, self.tf, camera, **kwargs)
