"""End-to-end functional remote-visualization session.

Everything real, in one process: time steps come from a
:class:`~repro.data.TimeVaryingDataset`, each is decomposed into bricks,
ray-cast (optionally as a true SPMD group with binary-swap compositing),
converted to a display image, compressed by a real codec, shipped through
the display-daemon framework, decompressed and reassembled at the display
interface.  User control (view/colormap/codec changes) flows backwards
through the same daemon and is applied *between* frames (§5).

This is the library's primary public API — the paper's system in
miniature.  Wall-clock timings it reports are for *this* machine; the
paper-testbed timing figures come from :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.metrics import FrameRecord, RenderingMetrics
from repro.core.partitioning import PartitionPlan
from repro.daemon import DisplayDaemon, DisplayInterface, RendererInterface
from repro.daemon.display_interface import ReceivedFrame
from repro.data.datasets import TimeVaryingDataset
from repro.machine import run_spmd
from repro.render import (
    Camera,
    cull_empty_space,
    TransferFunction,
    binary_swap,
    composite_bricks,
    decompose,
    render_volume,
    to_display_rgb,
    visibility_order,
)

__all__ = ["RemoteVisualizationSession", "SessionReport"]


@dataclass
class SessionReport:
    """What happened during a session run."""

    metrics: RenderingMetrics
    frames: list[ReceivedFrame] = field(default_factory=list)
    payload_bytes: list[int] = field(default_factory=list)
    raw_bytes_per_frame: int = 0

    @property
    def total_payload_bytes(self) -> int:
        return sum(self.payload_bytes)

    @property
    def mean_compression_ratio(self) -> float:
        if not self.payload_bytes:
            return 1.0
        return self.raw_bytes_per_frame * len(self.payload_bytes) / max(
            self.total_payload_bytes, 1
        )


class RemoteVisualizationSession:  # speaks: renderer
    """A live renderer ↔ daemon ↔ display loop over a dataset.

    Parameters
    ----------
    dataset:
        The time-varying volumes to animate.
    group_size:
        Processors per rendering group (bricks per volume).  With
        ``spmd=True``, rendering runs as a real thread-per-rank SPMD
        program with binary-swap compositing (any group size; non-powers
        of two use the folding pre-phase); otherwise bricks render
        sequentially and composite with the reference operator
        (identical images, less concurrency).
    camera, tf:
        Initial view and classification; both remotely controllable.
    codec:
        Initial compression method name (display can switch it).
    n_pieces:
        Sub-images per frame (parallel compression mode; 1 = assembled).
    """

    def __init__(
        self,
        dataset: TimeVaryingDataset,
        *,
        group_size: int = 4,
        camera: Camera | None = None,
        tf: TransferFunction | None = None,
        codec: str = "jpeg+lzo",
        n_pieces: int = 1,
        spmd: bool = False,
        parallel_compression: bool = False,
        shading: bool = False,
        cull: bool = False,
        buffer_frames: int = 16,
        background: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ):
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if parallel_compression and not spmd:
            raise ValueError("parallel_compression requires spmd=True")
        if parallel_compression and n_pieces != 1:
            raise ValueError(
                "parallel_compression derives pieces from the group; "
                "leave n_pieces at 1"
            )
        self.dataset = dataset
        self.group_size = group_size
        self.camera = camera if camera is not None else Camera()
        self.tf = tf if tf is not None else TransferFunction.jet()
        self.n_pieces = n_pieces
        self.spmd = spmd
        self.parallel_compression = parallel_compression
        self.shading = shading
        self.cull = cull
        self.background = background

        self.daemon = DisplayDaemon(buffer_frames=buffer_frames)
        self.renderer = RendererInterface(self.daemon, codec=codec)
        self.display = DisplayInterface(self.daemon)
        self._next_frame_id = 0
        self._closed = False
        #: control messages whose tag is not in the protocol registry —
        #: dropped, never silently absorbed into the render parameters
        self.unknown_controls = 0
        #: §4.1 start_renderer commands applied (each may seed camera
        #: parameters for the following frames)
        self.renderer_starts = 0

    # -- rendering ------------------------------------------------------------

    def _apply_controls(self) -> None:
        """Fold buffered user inputs into the *next* frame's parameters."""
        from dataclasses import replace

        for msg in self.renderer.drain_controls():
            if msg.tag == "view":
                self.camera = self.camera.with_view(
                    azimuth=msg.params["azimuth"],
                    elevation=msg.params["elevation"],
                )
            elif msg.tag == "zoom":
                self.camera = replace(self.camera, zoom=msg.params["zoom"])
            elif msg.tag == "projection":
                self.camera = replace(
                    self.camera, projection=msg.params["projection"]
                )
            elif msg.tag == "colormap":
                self.tf = TransferFunction(
                    positions=tuple(msg.params["positions"]),
                    colors=tuple(tuple(c) for c in msg.params["colors"]),
                )
            elif msg.tag == "start_renderer":
                # the §4.1 "start the renderer [with parameters]"
                # daemon command: in this in-process miniature the
                # render loop already runs, so (re)starting means
                # seeding the next frame's parameters in one shot
                self.renderer_starts += 1
                params = msg.params
                if "azimuth" in params or "elevation" in params:
                    self.camera = self.camera.with_view(
                        azimuth=params.get("azimuth", self.camera.azimuth),
                        elevation=params.get(
                            "elevation", self.camera.elevation),
                    )
                if "zoom" in params:
                    self.camera = replace(self.camera,
                                          zoom=params["zoom"])
                if "projection" in params:
                    self.camera = replace(
                        self.camera, projection=params["projection"])
            else:
                # registered tags owned by other layers (set_codec is
                # applied inside the renderer interface) pass through;
                # anything unregistered is counted, not absorbed
                from repro.daemon.protocol import CONTROL_TAGS

                if msg.tag not in CONTROL_TAGS:
                    self.unknown_controls += 1

    def render_step(self, t: int) -> np.ndarray:
        """Render time step ``t`` to a display-ready uint8 RGB image."""
        volume = self.dataset.volume(t)
        world_box = ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        if self.cull:
            culled = cull_empty_space(
                volume, threshold=self.tf.opacity_threshold()
            )
            if culled is None:  # nothing visible: an empty frame
                h, w = self.camera.image_size
                return to_display_rgb(
                    np.zeros((h, w, 4), dtype=np.float32),
                    background=self.background,
                )
            volume, world_box = culled
        dec = decompose(volume.shape, self.group_size)
        bricks = [self._remap_brick(b, world_box) for b in dec]
        if self.group_size == 1:
            rgba = render_volume(
                volume, self.tf, self.camera, box=world_box,
                shading=self.shading,
            )
        elif self.spmd:
            rgba = self._render_spmd(volume, bricks)
        else:
            partials = [
                render_volume(
                    b.extract(volume), self.tf, self.camera,
                    box=b.box, shading=self.shading,
                )
                for b in bricks
            ]
            rgba = composite_bricks(partials, bricks, self.camera)
        return to_display_rgb(rgba, background=self.background)

    @staticmethod
    def _remap_brick(brick, world_box):
        """Express a brick's unit-cube box inside ``world_box``."""
        from dataclasses import replace as dc_replace

        (lo, hi) = world_box
        if (lo, hi) == ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)):
            return brick
        blo, bhi = brick.box
        span = [h - l for l, h in zip(lo, hi)]
        new_lo = tuple(lo[a] + span[a] * blo[a] for a in range(3))
        new_hi = tuple(lo[a] + span[a] * bhi[a] for a in range(3))
        return dc_replace(brick, box=(new_lo, new_hi))

    def _render_spmd(self, volume: np.ndarray, bricks) -> np.ndarray:
        order = visibility_order(bricks, self.camera)
        tf, camera, shading = self.tf, self.camera, self.shading

        def worker(comm):
            brick = bricks[order[comm.rank]]
            partial = render_volume(
                brick.extract(volume), tf, camera, box=brick.box,
                shading=shading,
            )
            piece, rows = binary_swap(comm, partial)
            gathered = comm.gather((rows, piece))
            if comm.rank == 0:
                out = np.zeros_like(partial)
                for (r0, r1), p in gathered:
                    out[r0:r1] = p
                return out
            return None

        results = run_spmd(self.group_size, worker)
        return results[0]

    def _render_and_send_parallel(self, t: int, fid: int) -> None:
        """§4.1 parallel compression, for real: "as soon as a processor
        completes the sub-image it is responsible for compositing, it
        compresses and sends the compressed sub-image to the display
        daemon … the step to combine the sub-images is waived."

        Each SPMD rank binary-swaps to its strip, converts, compresses
        and ships it directly from its own thread — no assembled image
        ever exists on the render side.
        """
        volume = self.dataset.volume(t)
        bricks = list(decompose(volume.shape, self.group_size))
        order = visibility_order(bricks, self.camera)
        tf, camera, background = self.tf, self.camera, self.background
        shading = self.shading
        renderer = self.renderer
        h, w = camera.image_size

        def worker(comm):
            brick = bricks[order[comm.rank]]
            partial = render_volume(
                brick.extract(volume), tf, camera, box=brick.box,
                shading=shading,
            )
            piece, rows = binary_swap(comm, partial)
            # agree on the contributing strips (non-power-of-two groups
            # fold some ranks away, leaving them with empty ranges)
            all_rows = comm.allgather(rows)
            contributing = sorted(
                (r for r in all_rows if r[0] < r[1]), key=lambda r: r[0]
            )
            if rows[0] >= rows[1]:
                return
            strip = to_display_rgb(piece, background=background)
            renderer.send_piece(
                strip,
                time_step=t,
                frame_id=fid,
                piece_index=contributing.index(rows),
                n_pieces=len(contributing),
                row_range=rows,
                image_shape=(h, w),
            )

        run_spmd(self.group_size, worker)

    def step(self, t: int) -> ReceivedFrame:
        """Render, ship, receive and decode one time step."""
        self._apply_controls()
        fid = self._next_frame_id
        self._next_frame_id += 1
        if self.parallel_compression:
            self._render_and_send_parallel(t, fid)
            return self.display.next_frame()
        image = self.render_step(t)
        if self.n_pieces > 1:
            self.renderer.send_frame_pieces(
                image, time_step=t, n_pieces=self.n_pieces, frame_id=fid
            )
        else:
            self.renderer.send_frame(image, time_step=t, frame_id=fid)
        return self.display.next_frame()

    def run_pipelined(
        self,
        steps: range | None = None,
        n_groups: int = 2,
        on_frame: Callable[[ReceivedFrame], None] | None = None,
    ) -> SessionReport:
        """Animate with real inter-volume pipelining (§3, functionally).

        ``n_groups`` worker threads each render their round-robin share
        of the steps (group g renders steps g, g+L, …) and ship frames
        as they finish; the display side reassembles and the report
        orders frames by time step.  Data input (the dataset generator
        or disk read) of one step overlaps rendering of another — the
        paper's pipelining — with real concurrency wherever NumPy
        releases the GIL.
        """
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        steps_list = list(
            steps if steps is not None else range(self.dataset.n_steps)
        )
        if not steps_list:
            raise ValueError("no steps to render")
        self._apply_controls()
        plan = PartitionPlan(max(n_groups, 1), n_groups)
        t0 = time.perf_counter()

        import threading

        errors: list[BaseException] = []

        def group_worker(group: int) -> None:
            try:
                for idx in range(group, len(steps_list), n_groups):
                    t = steps_list[idx]
                    image = self.render_step(t)
                    self.renderer.send_frame(image, time_step=t, frame_id=idx)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        workers = [
            threading.Thread(target=group_worker, args=(g,), daemon=True)
            for g in range(n_groups)
        ]
        for w in workers:
            w.start()

        received: list[ReceivedFrame] = []
        arrival: dict[int, float] = {}
        for _ in steps_list:
            while True:
                if errors:  # fail fast instead of waiting out the timeout
                    raise errors[0]
                try:
                    frame = self.display.next_frame(timeout=0.5)
                    break
                except TimeoutError:
                    continue
            arrival[frame.frame_id] = time.perf_counter() - t0
            received.append(frame)
            if on_frame is not None:
                on_frame(frame)
        for w in workers:
            w.join(timeout=30.0)
        if errors:
            raise errors[0]
        self._next_frame_id += len(steps_list)

        received.sort(key=lambda f: f.frame_id)
        # In-order display semantics: frame k appears once it *and* every
        # earlier frame have arrived (running max of arrival times).
        records: list[FrameRecord] = []
        shown = 0.0
        for frame in received:
            shown = max(shown, arrival[frame.frame_id])
            records.append(
                FrameRecord(
                    time_step=frame.frame_id,
                    group=plan.group_of_step(frame.frame_id),
                    displayed=shown,
                )
            )
        h, w = self.camera.image_size
        return SessionReport(
            metrics=RenderingMetrics.from_frames(records),
            frames=received,
            payload_bytes=[f.payload_bytes for f in received],
            raw_bytes_per_frame=h * w * 3,
        )

    def run(
        self,
        steps: range | None = None,
        on_frame: Callable[[ReceivedFrame], None] | None = None,
    ) -> SessionReport:
        """Animate ``steps`` (default: the whole dataset); return a report."""
        steps = steps if steps is not None else range(self.dataset.n_steps)
        t0 = time.perf_counter()
        received: list[ReceivedFrame] = []
        records: list[FrameRecord] = []
        payloads: list[int] = []
        for t in steps:
            r_start = time.perf_counter() - t0
            frame = self.step(t)
            now = time.perf_counter() - t0
            received.append(frame)
            payloads.append(frame.payload_bytes)
            records.append(
                FrameRecord(
                    time_step=t,
                    group=0,
                    render_start=r_start,
                    render_end=now,
                    displayed=now,
                )
            )
            if on_frame is not None:
                on_frame(frame)
        h, w = self.camera.image_size
        return SessionReport(
            metrics=RenderingMetrics.from_frames(records),
            frames=received,
            payload_bytes=payloads,
            raw_bytes_per_frame=h * w * 3,
        )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.renderer.close()
            self.display.close()
            self.daemon.close()

    def __enter__(self) -> "RemoteVisualizationSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
