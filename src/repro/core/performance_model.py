"""Closed-form performance model of the partitioned pipeline.

The companion paper [15] ("Processors Management for Rendering
Time-varying Volume Data Sets") characterizes the optimal partitioning
with a performance model; this module provides that model for our cost
constants.  It predicts the three §3 metrics from (P, L) in O(1), which
makes the optimal-L search instant; the discrete-event simulation in
:mod:`repro.core.pipeline` is the ground truth it is validated against.

Steady state: each group cycles every ``C = max(render, L·read, L·output)``
seconds (the shared disk and shared output path must serve all L groups
per cycle), and the L groups interleave, so frames appear every ``C / L``
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import RenderingMetrics
from repro.core.partitioning import PartitionPlan
from repro.sim.cluster import MachineSpec, WanRoute
from repro.sim.costs import CostModel, DatasetProfile

__all__ = ["PerformanceModel", "predict_metrics"]


@dataclass(frozen=True)
class PerformanceModel:
    """Analytic pipeline model for one machine/dataset/image setup."""

    machine: MachineSpec
    profile: DatasetProfile
    pixels: int
    transport: str = "store"  # "store" | "daemon" | "x"
    route: WanRoute | None = None
    client: MachineSpec | None = None
    n_pieces: int = 1

    @property
    def costs(self) -> CostModel:
        return self.machine.costs

    # -- stage times -------------------------------------------------------------

    def read_s(self, n_groups: int = 1) -> float:
        return self.costs.volume_read_s(self.profile, concurrent_streams=n_groups)

    def render_s(self, group_size: int) -> float:
        """Local rendering + compositing for one volume.

        Distribution is *not* included: in the pipelined schedule the
        data-input stage (read + scatter) of step t+L overlaps the
        rendering of step t, so it contributes only to start-up latency
        and the shared-input feasibility bound.
        """
        return self.costs.group_render_s(
            self.profile, self.pixels, group_size
        ) + self.costs.composite_s(self.pixels, group_size)

    def input_s(self, n_groups: int, group_size: int) -> float:
        """Full data-input stage for one volume (read + scatter)."""
        return self.read_s(n_groups) + self.costs.distribute_s(
            self.profile, group_size
        )

    def output_shared_s(self) -> float:
        """Per-frame occupancy of the shared output path."""
        if self.transport == "store":
            return self.pixels * 3 / self.costs.io_bandwidth_Bps
        if self.route is None:
            raise ValueError(f"transport {self.transport!r} needs a route")
        if self.transport == "x":
            return self.route.transfer_s(self.pixels * 3)
        if self.transport == "daemon":
            nbytes = self.costs.compressed_frame_bytes(
                self.pixels, self.profile, self.n_pieces
            )
            return self.route.transfer_s(nbytes)
        raise ValueError(f"unknown transport {self.transport!r}")

    def client_s(self) -> float:
        """Per-frame occupancy of the (single) display client."""
        if self.transport == "store" or self.client is None:
            return 0.0
        put = self.pixels * 3 / self.client.local_display_bandwidth_Bps
        base = self.client.display_overhead_s + put
        if self.transport == "daemon":
            # decompress constants are client-calibrated (O2 rates)
            return base + self.client.costs.decompress_s(self.pixels, self.n_pieces)
        return base

    def compress_s(self) -> float:
        if self.transport != "daemon":
            return 0.0
        return self.costs.compress_s(self.pixels, self.n_pieces)

    # -- metrics -------------------------------------------------------------------

    def predict(self, plan: PartitionPlan, n_steps: int) -> RenderingMetrics:
        """Predicted (start-up, overall, inter-frame) for a plan."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        l_groups = plan.n_groups
        g = plan.group_size
        read = self.read_s(l_groups)
        inp = self.input_s(l_groups, g)
        render = self.render_s(g)
        compress = self.compress_s()
        out_shared = self.output_shared_s()
        client = self.client_s()

        # Steady-state group cycle: the group's own work per volume (its
        # renderer, and its serial reader = read + scatter) vs the shared
        # resources' aggregate service per L volumes.
        cycle = max(
            render + compress,
            inp,
            l_groups * read,
            l_groups * out_shared,
            l_groups * client,
        )
        startup = inp + render + compress + out_shared + client
        inter = cycle / l_groups if n_steps > 1 else 0.0
        overall = startup + (n_steps - 1) * inter
        # Build a minimal frame list so RenderingMetrics stays uniform.
        from repro.core.metrics import FrameRecord

        frames = [
            FrameRecord(
                time_step=t,
                group=plan.group_of_step(t),
                displayed=startup + t * inter,
            )
            for t in range(n_steps)
        ]
        return RenderingMetrics(
            start_up_latency=startup,
            overall_time=overall,
            inter_frame_delay=inter,
            frames=tuple(frames),
        )

    def optimal_partition(
        self, n_procs: int, n_steps: int, candidates: list[int] | None = None
    ) -> tuple[int, dict[int, float]]:
        """L minimizing predicted overall time; returns (L*, {L: overall})."""
        from repro.core.partitioning import candidate_partitions

        ls = candidates if candidates is not None else candidate_partitions(n_procs)
        overall = {
            l: self.predict(PartitionPlan(n_procs, l), n_steps).overall_time
            for l in ls
        }
        best = min(overall, key=overall.get)
        return best, overall


def predict_metrics(
    machine: MachineSpec,
    profile: DatasetProfile,
    pixels: int,
    n_procs: int,
    n_groups: int,
    n_steps: int,
    **kwargs,
) -> RenderingMetrics:
    """One-call convenience wrapper over :class:`PerformanceModel`."""
    model = PerformanceModel(
        machine=machine, profile=profile, pixels=pixels, **kwargs
    )
    return model.predict(PartitionPlan(n_procs, n_groups), n_steps)
