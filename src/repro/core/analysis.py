"""Scalability analysis of the partitioned pipeline.

The companion paper [15] characterizes processor management with an
experimental study; this module packages that study as a reusable
analysis: strong scaling (fixed workload, growing machine), weak scaling
(workload grows with the machine), speedup/efficiency, and the
bottleneck attribution that explains where the paper's optimum L=4 comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import PartitionPlan, candidate_partitions
from repro.core.performance_model import PerformanceModel
from repro.core.pipeline import PipelineConfig, simulate_pipeline
from repro.sim.cluster import MachineSpec, WanRoute
from repro.sim.costs import DatasetProfile

__all__ = [
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "bottleneck_report",
    "control_response_latency",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One machine size in a scaling study."""

    n_procs: int
    best_partition: int
    overall_time: float
    speedup: float
    efficiency: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P={self.n_procs:<4d} L*={self.best_partition:<3d} "
            f"T={self.overall_time:8.1f}s  S={self.speedup:6.2f}  "
            f"E={self.efficiency * 100:5.1f}%"
        )


def _best_partition(
    n_procs: int,
    n_steps: int,
    profile: DatasetProfile,
    machine: MachineSpec,
    image_size: tuple[int, int],
) -> tuple[int, float]:
    best_l, best_t = 1, float("inf")
    for l_groups in candidate_partitions(n_procs):
        t = simulate_pipeline(
            PipelineConfig(
                n_procs=n_procs,
                n_groups=l_groups,
                n_steps=n_steps,
                profile=profile,
                machine=machine,
                image_size=image_size,
            )
        ).overall_time
        if t < best_t:
            best_l, best_t = l_groups, t
    return best_l, best_t


def strong_scaling(
    machine: MachineSpec,
    profile: DatasetProfile,
    proc_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    n_steps: int = 64,
    image_size: tuple[int, int] = (256, 256),
) -> list[ScalingPoint]:
    """Fixed workload, growing machine; each point uses its own best L.

    Speedup is measured against the single-processor run; efficiency is
    ``speedup / P``.
    """
    base = None
    points = []
    for procs in proc_counts:
        best_l, t = _best_partition(procs, n_steps, profile, machine, image_size)
        if base is None:
            base = t
        points.append(
            ScalingPoint(
                n_procs=procs,
                best_partition=best_l,
                overall_time=t,
                speedup=base / t,
                efficiency=base / t / procs * proc_counts[0],
            )
        )
    return points


def weak_scaling(
    machine: MachineSpec,
    profile: DatasetProfile,
    proc_counts: tuple[int, ...] = (4, 8, 16, 32, 64),
    steps_per_proc: int = 2,
    image_size: tuple[int, int] = (256, 256),
) -> list[ScalingPoint]:
    """Workload grows with the machine (``steps_per_proc`` steps per
    processor); perfect weak scaling keeps overall time flat."""
    base = None
    points = []
    for procs in proc_counts:
        best_l, t = _best_partition(
            procs, steps_per_proc * procs, profile, machine, image_size
        )
        if base is None:
            base = t
        points.append(
            ScalingPoint(
                n_procs=procs,
                best_partition=best_l,
                overall_time=t,
                speedup=base / t * (procs / proc_counts[0]),
                efficiency=base / t,
            )
        )
    return points


def control_response_latency(
    machine: MachineSpec,
    profile: DatasetProfile,
    n_procs: int,
    n_groups: int,
    image_size: tuple[int, int] = (256, 256),
) -> float:
    """Expected delay from a §5 user input to its first affected frame.

    "The user inputs … are buffered and only affect the rendering of
    following frames.  Depending on the level of change in focus and
    context, certain delay is expected."  With L groups pipelining, a
    control message lands while up to L volumes are already in flight
    (one rendering per group); the first frame rendered *after* the
    input appears roughly one group render-cycle later, plus the frames
    already committed ahead of it in the in-order display stream.
    """
    plan = PartitionPlan(n_procs, n_groups)
    model = PerformanceModel(
        machine=machine,
        profile=profile,
        pixels=image_size[0] * image_size[1],
    )
    render = model.render_s(plan.group_size)
    inter = max(render / n_groups, model.read_s(n_groups))
    # on average half a render is pending on the receiving group, and
    # L-1 already-committed frames display before the affected one
    return 0.5 * render + (n_groups - 1) * inter + inter


def bottleneck_report(
    machine: MachineSpec,
    profile: DatasetProfile,
    n_procs: int,
    n_steps: int = 64,
    image_size: tuple[int, int] = (256, 256),
    transport: str = "store",
    route: WanRoute | None = None,
    client: MachineSpec | None = None,
) -> dict[int, dict[str, float]]:
    """Per-L attribution of the steady-state bottleneck.

    For every candidate L, reports the per-frame occupancy each shared
    stage demands; the maximum entry is the pipeline's limiting stage —
    "the performance of a pipeline is determined by its slowest stage".
    """
    model = PerformanceModel(
        machine=machine,
        profile=profile,
        pixels=image_size[0] * image_size[1],
        transport=transport,
        route=route,
        client=client,
    )
    out: dict[int, dict[str, float]] = {}
    for l_groups in candidate_partitions(n_procs):
        plan = PartitionPlan(n_procs, l_groups)
        g = plan.group_size
        per_frame = {
            "render": (model.render_s(g) + model.compress_s()) / l_groups,
            "storage": model.read_s(l_groups),
            "output": model.output_shared_s(),
            "client": model.client_s(),
        }
        per_frame["bottleneck"] = max(per_frame.values())
        out[l_groups] = per_frame
    return out
