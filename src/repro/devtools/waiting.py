"""The sanctioned way to wait for a cross-thread condition.

Lint rule ``DT201`` bans ``time.sleep`` inside ``while`` loops: a
busy-wait poll burns CPU, hides missed-wakeup bugs, and turns timing
assumptions into flakes.  When the state being waited on has a
``Condition``/``Event``, wait on that.  When it does not (observing
another component's counters from a test, say), use :func:`wait_until`:
it sleeps on a private :class:`threading.Event` between probes — never a
raw ``sleep`` — enforces a deadline, and raises a :class:`TimeoutError`
naming what it was waiting for instead of silently looping forever.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["wait_until"]


def wait_until(
    predicate: Callable[[], object],
    timeout: float = 5.0,
    interval: float = 0.01,
    message: str | None = None,
):
    """Block until ``predicate()`` is truthy; return its value.

    Raises :class:`TimeoutError` (carrying ``message`` or the predicate
    name) if the deadline passes first.
    """
    deadline = time.monotonic() + timeout
    pause = threading.Event()
    while True:
        value = predicate()
        if value:
            return value
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            what = message or getattr(predicate, "__name__", repr(predicate))
            raise TimeoutError(f"condition not met within {timeout}s: {what}")
        pause.wait(min(interval, remaining))
