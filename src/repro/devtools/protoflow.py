"""Protocol-conformance analyzer for the framed WAN protocol.

Eight PRs of growth turned the ``RVIZ`` framing of
:mod:`repro.daemon.protocol` into a real protocol: credit/ack
delivery, reconnect-with-resume, relay pull-fetch, tier renegotiation,
and gap announcements.  DT501/DT502 check that a *single* dispatch
chain is exhaustive; nothing checked that the two *ends* of the wire
agree.  This module does, in two layers:

1. **Wire-schema extraction (DT901).**  Every ``struct.pack`` /
   ``struct.unpack`` / ``struct.unpack_from`` site (including calls on
   module-level ``struct.Struct`` constants) is harvested with its
   format string.  Sites are paired into *records* — explicitly via a
   ``# wire: <name>`` annotation, or automatically by normalized field
   layout — and each record must have both an encoder and a decoder
   whose formats agree on endianness, field order, and byte widths.
   Formats must name their endianness (``<``, ``>``, or ``!``):
   native-order formats change layout across hosts, which is exactly
   what a WAN protocol cannot tolerate.

2. **Protocol state machines (DT902-DT904).**  ``# speaks:``
   annotations attribute classes and functions to protocol endpoints;
   the analyzer reconstructs each endpoint's send/receive behaviour
   from its dispatch code (``msg.tag == "..."`` chains, ``isinstance``
   kind tests, ``ControlMessage(tag=...)`` / ``send_control("...")``
   construction) and verifies it against the committed automata in
   :mod:`repro.daemon.protocol_spec`: every receivable tag is handled,
   every endpoint owns an unknown-control sink, nothing is sent that
   the peer cannot accept in its paired states, and — when the spec
   module itself is in the analyzed set — no spec state or tag is dead
   code and the spec agrees with the ``CONTROL_TAGS`` registry.

==========  ============================================================
rule        meaning
==========  ============================================================
``DT901``   pack/unpack wire-schema mismatch: encoder and decoder
            formats disagree, a record has only one side, or a format
            leaves endianness to the host
``DT902``   a tag the spec says this endpoint must receive has no
            dispatch branch, or an endpoint that dispatches controls
            has no unknown-control sink
``DT903``   a send the peer cannot accept: the endpoint (or the
            annotated state) is not specified to send that tag, or a
            spec state sends a tag outside its peers' receive sets
``DT904``   dead protocol surface: a dispatch branch for a tag the
            spec says this endpoint never receives, an unreachable
            spec state, a spec send no code exercises, drift between
            the spec and the tag registry, or a ``# speaks:`` naming
            an unknown endpoint/state
==========  ============================================================

Declaring intent
----------------
- ``# speaks: <endpoint>`` on (or directly above) a ``class``/``def``
  line attributes the whole scope to a protocol endpoint;
  ``# speaks: <endpoint>@<state>`` additionally pins the spec state,
  tightening DT902-DT904 from endpoint-level to state-level.  Nested
  annotations override outer ones.
- ``# wire: <name>`` on (or directly above) a pack/unpack call names
  the record the site encodes; same-named sites are cross-checked.  A
  parenthetical containing ``one-sided``, ``vectorized``, or
  ``external`` — e.g. ``# wire: lz-token (vectorized encoder)`` —
  declares that the counterpart intentionally lives outside ``struct``
  (a numpy ``tobytes`` emitter, byte-indexed parsing, or a foreign
  implementation), which exempts the record from the both-sides check.
- The line-scoped ``# lint: disable=DT90x`` pragma from
  :mod:`repro.devtools.lint` silences a single finding.

Baseline
--------
Same workflow as the lockset and resource-flow analyzers:
grandfathered findings live in a committed ``protoflow_baseline.json``
keyed line-independently, every entry carries a written justification,
and CI fails on new findings and on stale entries.  The committed
baseline is *empty*: every finding the analyzer raised at introduction
was either fixed or taught as a false positive with the annotations
above (the triage log is in ``docs/devtools.md``).

Run with ``make analyze``, ``python -m repro.devtools.protoflow
[paths]``, or as part of ``repro lint`` / ``make lint``.  ``repro lint
--emit-proto-dot`` renders the spec automata to Graphviz
(``docs/protocol_states.dot``).
"""

from __future__ import annotations

import argparse
import ast
import re
import struct as _struct
import sys
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

from repro.daemon.protocol import CONTROL_TAGS
from repro.daemon.protocol_spec import (
    ENDPOINTS,
    SPEC_TAGS,
    spec_errors,
)
from repro.devtools.lint import _disabled_lines
from repro.devtools.lockset import (
    Baseline,
    LocksetFinding,
    SKIPPED_TREE_PARTS,
    _baseline_path,
)

__all__ = [
    "PROTOFLOW_RULES",
    "DEFAULT_BASELINE",
    "ProtoFinding",
    "WireSite",
    "analyze_source",
    "analyze_paths",
    "load_baseline",
    "render_dot",
    "main",
]

PROTOFLOW_RULES: dict[str, str] = {
    "DT901": "pack/unpack wire-schema mismatch (format, width, "
             "endianness, or a one-sided record)",
    "DT902": "receivable tag without a dispatch branch, or endpoint "
             "without an unknown-control sink",
    "DT903": "send outside the peer-acceptable state set",
    "DT904": "dead protocol surface: dead dispatch branch, unreachable "
             "spec state, unexercised spec send, or registry drift",
}

#: default baseline filename, resolved against the working directory
DEFAULT_BASELINE = "protoflow_baseline.json"

#: analyzed-set suffix that enables the spec-exercise checks (dead spec
#: states/sends, registry drift): they compare the *whole* codebase
#: against the spec, so they only make sense when the spec module is
#: itself part of the run (true for ``repro lint src``), not when a
#: single fixture file is analyzed
SPEC_MODULE_SUFFIX = "daemon/protocol_spec.py"

#: message-kind class names mapped to the pseudo-tag their isinstance
#: dispatch handles ("hello" is pre-state handshake, not conformance-
#: checked; ControlMessage isinstance alone names no tag)
_KIND_PSEUDO_TAGS = {"FrameMessage": "frame"}

#: attribute substrings that mark a counter as an unknown/malformed
#: sink (``self.unknown_controls += 1`` and friends)
_SINK_NAME_PARTS = ("unknown", "malformed")

_SPEAKS_RE = re.compile(
    r"#\s*speaks:\s*([A-Za-z_]\w*)(?:@([A-Za-z_]\w*))?")
_WIRE_RE = re.compile(
    r"#\s*wire:\s*([A-Za-z0-9_.\-]+)(?:\s*\(([^)]*)\))?")
_ONE_SIDED_WORDS = ("one-sided", "vectorized", "external")

_STRUCT_FMT_RE = re.compile(r"(\d*)([cbBhHiIlLqQnNefdspPx?])")


class ProtoFinding(LocksetFinding):
    """A DT90x finding plus its line-independent baseline key."""


@dataclass
class WireSite:
    """One static ``struct`` pack/unpack call."""

    path: str
    line: int
    op: str  # "pack" | "unpack"
    fmt: str
    record: str | None = None
    one_sided: bool = False

    def normalized(self):
        return _normalize_format(self.fmt)


@dataclass
class _EndpointFacts:
    """What the code of one endpoint actually does, per ``# speaks:``
    group: ``(endpoint, state-or-None)`` -> handled/sent tags."""

    # (state or None) -> {tag: (path, line) of first dispatch}
    handles: dict = field(default_factory=dict)
    # list of (tag, state or None, path, line) send sites
    sends: list = field(default_factory=list)
    # (state or None) -> earliest (path, line) dispatch anchor
    anchors: dict = field(default_factory=dict)
    has_sink: bool = False


@dataclass
class _ModuleFacts:
    """Everything one file contributes to the global checks."""

    path: str
    wire_sites: list = field(default_factory=list)
    endpoints: dict = field(default_factory=dict)  # name -> _EndpointFacts
    findings: list = field(default_factory=list)  # file-local findings
    disabled: dict = field(default_factory=dict)  # line -> {rules}


# -- format normalization ------------------------------------------------------


def _normalize_format(fmt: str):
    """``"<3IB"`` -> ``("<", ("I", "I", "I", "B"))``; the endianness
    prefix (or ``""`` when native) plus the expanded field codes."""
    endian = ""
    body = fmt
    if body and body[0] in "@=<>!":
        endian, body = body[0], body[1:]
    fields = []
    for count, code in _STRUCT_FMT_RE.findall(body):
        if code == "s":
            fields.append(f"{count or 1}s")
        else:
            fields.extend([code] * int(count or 1))
    return endian, tuple(fields)


def _format_width(fmt: str) -> int | None:
    try:
        return _struct.calcsize(fmt)
    except _struct.error:
        return None


def _describe_mismatch(ref: str, other: str) -> str:
    """Human diff between two normalized formats for the DT901 message."""
    ref_e, ref_f = _normalize_format(ref)
    oth_e, oth_f = _normalize_format(other)
    if ref_e != oth_e:
        return (f"endianness differs ({ref_e or 'native'} vs "
                f"{oth_e or 'native'})")
    if sorted(ref_f) == sorted(oth_f):
        return f"field order differs ({''.join(ref_f)} vs {''.join(oth_f)})"
    rw, ow = _format_width(ref), _format_width(other)
    if rw is not None and ow is not None and rw != ow:
        return f"byte widths differ ({rw} vs {ow} bytes)"
    return f"field layout differs ({''.join(ref_f)} vs {''.join(oth_f)})"


# -- comment annotations -------------------------------------------------------


def _collect_comments(source: str):
    """line -> comment text, via tokenize (docstrings excluded)."""
    comments: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except tokenize.TokenError:
        pass
    return comments


def _annotation_at(comments, lineno, end_lineno, regex):
    """First regex match in the comments on ``lineno - 1`` (the line
    above) through ``end_lineno`` (trailing on any line of the node)."""
    for line in range(lineno - 1, (end_lineno or lineno) + 1):
        text = comments.get(line)
        if text:
            m = regex.search(text)
            if m:
                return m
    return None


# -- per-module scan -----------------------------------------------------------


def _dotted(node: ast.AST, aliases: dict) -> str | None:
    """Resolve ``st.unpack_from`` through import aliases to
    ``struct.unpack_from``; None for non-name expressions."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _const_str(node) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _ModuleScan:
    """Single-file fact extraction plus the file-local checks."""

    def __init__(self, tree: ast.AST, path: str, source: str):
        self.tree = tree
        self.path = path
        self.facts = _ModuleFacts(path=path)
        self.comments = _collect_comments(source)
        self.aliases: dict[str, str] = {}
        self.struct_consts: dict[str, str] = {}  # NAME -> format string
        # a trailing `# speaks:` on a class line is also "the line
        # above" for a def on the next line; report each bad
        # annotation once, not once per scope it attaches to
        self._speaks_reported: set[str] = set()
        self._collect_imports()
        self._collect_struct_consts()

    def _collect_imports(self):
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] \
                        = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def _collect_struct_consts(self):
        """Module-level ``_LEN = struct.Struct(">I")`` constants, so
        ``_LEN.pack(...)`` sites resolve to the right format."""
        for node in self.tree.body if hasattr(self.tree, "body") else []:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if (isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and _dotted(value.func, self.aliases) == "struct.Struct"
                    and value.args):
                fmt = _const_str(value.args[0])
                if fmt is not None:
                    self.struct_consts[target.id] = fmt

    # -- entry point -----------------------------------------------------------

    def run(self) -> _ModuleFacts:
        self._walk_scope(self.tree, endpoint=None, state=None)
        return self.facts

    def _finding(self, line: int, rule: str, message: str, key: str):
        self.facts.findings.append(ProtoFinding(
            path=self.path, line=line, rule=rule, message=message,
            key=f"{_baseline_path(self.path)}:{rule}:{key}"))

    # -- scope walk with # speaks: context -------------------------------------

    def _walk_scope(self, node, endpoint, state):
        for child in ast.iter_child_nodes(node):
            ep, st = endpoint, state
            if isinstance(child, (ast.ClassDef, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                m = _annotation_at(self.comments, child.lineno,
                                   child.lineno, _SPEAKS_RE)
                if m:
                    ep, st = m.group(1), m.group(2)
                    if ep not in ENDPOINTS:
                        if f"speaks.{ep}" not in self._speaks_reported:
                            self._speaks_reported.add(f"speaks.{ep}")
                            self._finding(
                                child.lineno, "DT904",
                                f"`# speaks: {ep}` names an endpoint "
                                f"absent from protocol_spec (known: "
                                f"{', '.join(sorted(ENDPOINTS))})",
                                f"speaks.{ep}")
                        ep, st = endpoint, state
                    elif st is not None and st not in ENDPOINTS[ep].states:
                        if f"speaks.{ep}.{st}" not in self._speaks_reported:
                            self._speaks_reported.add(f"speaks.{ep}.{st}")
                            self._finding(
                                child.lineno, "DT904",
                                f"`# speaks: {ep}@{st}` names a state "
                                f"absent from the {ep} spec (known: "
                                f"{', '.join(sorted(ENDPOINTS[ep].states))})",
                                f"speaks.{ep}.{st}")
                        st = None
            self._inspect_node(child, ep, st)
            self._walk_scope(child, ep, st)

    def _endpoint_facts(self, endpoint) -> _EndpointFacts:
        return self.facts.endpoints.setdefault(endpoint, _EndpointFacts())

    # -- node inspection -------------------------------------------------------

    def _inspect_node(self, node, endpoint, state):
        if isinstance(node, ast.Call):
            self._inspect_call(node, endpoint, state)
        elif isinstance(node, ast.Compare) and endpoint:
            for tag in _tag_compare_literals(node):
                self._record_handle(endpoint, state, tag, node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.Assign)) and endpoint:
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                name = target.attr if isinstance(target, ast.Attribute) \
                    else getattr(target, "id", "")
                if any(part in name.lower() for part in _SINK_NAME_PARTS):
                    self._endpoint_facts(endpoint).has_sink = True

    def _inspect_call(self, node: ast.Call, endpoint, state):
        dotted = _dotted(node.func, self.aliases)
        # -- wire sites --------------------------------------------------------
        if dotted in ("struct.pack", "struct.pack_into"):
            self._record_wire(node, "pack", node.args and
                              _const_str(node.args[0]))
            return
        if dotted in ("struct.unpack", "struct.unpack_from",
                      "struct.iter_unpack"):
            self._record_wire(node, "unpack", node.args and
                              _const_str(node.args[0]))
            return
        if isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id in self.struct_consts:
            fmt = self.struct_consts[node.func.value.id]
            if node.func.attr in ("pack", "pack_into"):
                self._record_wire(node, "pack", fmt)
                return
            if node.func.attr in ("unpack", "unpack_from", "iter_unpack"):
                self._record_wire(node, "unpack", fmt)
                return
        # -- endpoint behaviour ------------------------------------------------
        if endpoint is None:
            return
        basename = dotted.rsplit(".", 1)[-1] if dotted else None
        if basename == "isinstance" and len(node.args) == 2:
            kind = _dotted(node.args[1], self.aliases)
            kind = kind.rsplit(".", 1)[-1] if kind else None
            if kind in _KIND_PSEUDO_TAGS:
                self._record_handle(endpoint, state,
                                    _KIND_PSEUDO_TAGS[kind], node.lineno)
            return
        if basename == "ControlMessage":
            tag = self._ctor_tag(node)
            if tag is not None:
                self._record_send(endpoint, state, tag, node.lineno)
            return
        if basename == "FrameMessage":
            self._record_send(endpoint, state, "frame", node.lineno)
            return
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "send_control" and node.args:
            tag = _const_str(node.args[0])
            if tag is not None:
                self._record_send(endpoint, state, tag, node.lineno)

    @staticmethod
    def _ctor_tag(node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "tag":
                return _const_str(kw.value)
        if node.args:
            return _const_str(node.args[0])
        return None

    # -- fact recording + file-local rules -------------------------------------

    def _record_wire(self, node: ast.Call, op: str, fmt):
        if not fmt:
            return  # dynamic format string: nothing static to check
        m = _annotation_at(self.comments, node.lineno,
                           getattr(node, "end_lineno", node.lineno),
                           _WIRE_RE)
        record = m.group(1) if m else None
        extra = (m.group(2) or "").lower() if m else ""
        one_sided = any(word in extra for word in _ONE_SIDED_WORDS)
        site = WireSite(path=self.path, line=node.lineno, op=op, fmt=fmt,
                        record=record, one_sided=one_sided)
        self.facts.wire_sites.append(site)
        endian, _ = site.normalized()
        if endian not in ("<", ">", "!"):
            self._finding(
                node.lineno, "DT901",
                f"wire format {fmt!r} uses native byte order; a WAN "
                f"protocol must pin endianness explicitly (<, >, or !)",
                f"endian.{fmt}")

    def _record_handle(self, endpoint, state, tag, line):
        facts = self._endpoint_facts(endpoint)
        facts.handles.setdefault(state, {}).setdefault(tag,
                                                       (self.path, line))
        anchor = facts.anchors.get(state)
        if anchor is None or (self.path, line) < anchor:
            facts.anchors[state] = (self.path, line)
        spec = ENDPOINTS[endpoint]
        expected = spec.states[state].receives if state \
            else spec.receivable()
        if tag in SPEC_TAGS and tag not in expected:
            where = f"state {state!r} of {endpoint}" if state \
                else f"endpoint {endpoint!r}"
            self._finding(
                line, "DT904",
                f"dead dispatch branch: {where} never receives "
                f"{tag!r} per protocol_spec (receivable: "
                f"{', '.join(sorted(expected)) or 'nothing'})",
                f"dead.{endpoint}.{state or '*'}.{tag}")

    def _record_send(self, endpoint, state, tag, line):
        facts = self._endpoint_facts(endpoint)
        facts.sends.append((tag, state, self.path, line))
        if tag not in SPEC_TAGS:
            return  # unknown tag literals are DT501's department
        spec = ENDPOINTS[endpoint]
        if state:
            allowed = spec.states[state].sends
            if tag not in allowed:
                peers = sorted(spec.states[state].peer_states)
                self._finding(
                    line, "DT903",
                    f"{endpoint}@{state} sends {tag!r} but the spec "
                    f"allows only "
                    f"{{{', '.join(sorted(allowed)) or ''}}} in that "
                    f"state (peers: {', '.join(peers)})",
                    f"send.{endpoint}.{state}.{tag}")
        elif tag not in spec.sendable():
            self._finding(
                line, "DT903",
                f"endpoint {endpoint!r} sends {tag!r} but no state of "
                f"its spec automaton may send it — the peer cannot "
                f"accept it (sendable: "
                f"{', '.join(sorted(spec.sendable())) or 'nothing'})",
                f"send.{endpoint}.*.{tag}")


def _tag_compare_literals(node: ast.Compare) -> list[str]:
    """Tags an ``x.tag == "lit"`` / ``x.tag in ("a", "b")`` dispatch
    test handles (equality and membership only; negations guard, they
    do not handle)."""
    if len(node.ops) != 1:
        return []
    if not (isinstance(node.left, ast.Attribute)
            and node.left.attr == "tag"):
        return []
    comparator = node.comparators[0]
    if isinstance(node.ops[0], ast.Eq):
        lit = _const_str(comparator)
        return [lit] if lit is not None else []
    if isinstance(node.ops[0], ast.In) and \
            isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
        lits = [_const_str(el) for el in comparator.elts]
        return [lit for lit in lits if lit is not None]
    return []


# -- global checks over the merged facts ---------------------------------------


def _merge_endpoint_facts(all_facts):
    merged: dict[str, _EndpointFacts] = {}
    for facts in all_facts:
        for name, ep in facts.endpoints.items():
            out = merged.setdefault(name, _EndpointFacts())
            for state, handles in ep.handles.items():
                bucket = out.handles.setdefault(state, {})
                for tag, where in handles.items():
                    bucket.setdefault(tag, where)
            out.sends.extend(ep.sends)
            for state, anchor in ep.anchors.items():
                prev = out.anchors.get(state)
                if prev is None or anchor < prev:
                    out.anchors[state] = anchor
            out.has_sink = out.has_sink or ep.has_sink
    return merged


def _check_wire_schemas(all_facts) -> list[ProtoFinding]:
    """DT901 over the merged wire sites: named records must agree and
    have both sides; unnamed formats must pair up by layout."""
    findings: list[ProtoFinding] = []
    sites = [s for facts in all_facts for s in facts.wire_sites]

    def emit(site, message, key):
        findings.append(ProtoFinding(
            path=site.path, line=site.line, rule="DT901", message=message,
            key=f"{_baseline_path(site.path)}:DT901:{key}"))

    named: dict[str, list[WireSite]] = {}
    auto: dict[tuple, list[WireSite]] = {}
    for site in sites:
        if site.record:
            named.setdefault(site.record, []).append(site)
        else:
            auto.setdefault(site.normalized(), []).append(site)

    for record, group in sorted(named.items()):
        group.sort(key=lambda s: (s.op != "pack", s.path, s.line))
        ref = group[0]
        for site in group[1:]:
            if site.normalized() != ref.normalized():
                emit(site,
                     f"wire record {record!r}: {site.op} format "
                     f"{site.fmt!r} does not match {ref.op} format "
                     f"{ref.fmt!r} at {_baseline_path(ref.path)}:"
                     f"{ref.line} — {_describe_mismatch(ref.fmt, site.fmt)}",
                     f"wire.{record}")
        ops = {s.op for s in group}
        if len(ops) == 1 and not any(s.one_sided for s in group):
            only = next(iter(ops))
            other = "unpack" if only == "pack" else "pack"
            emit(ref,
                 f"wire record {record!r} has {only} sites but no "
                 f"{other} in the analyzed set; mark the annotation "
                 f"one-sided if the counterpart is vectorized/external",
                 f"wire.{record}.{only}-only")

    for layout, group in sorted(auto.items(),
                                key=lambda kv: (kv[1][0].path,
                                                kv[1][0].line)):
        group.sort(key=lambda s: (s.path, s.line))
        ops = {s.op for s in group}
        if len(ops) == 1 and not any(s.one_sided for s in group):
            only = next(iter(ops))
            other = "unpack" if only == "pack" else "pack"
            ref = group[0]
            emit(ref,
                 f"{only} format {ref.fmt!r} has no matching {other} "
                 f"anywhere in the analyzed set — one side of the wire "
                 f"cannot speak this layout (name both sides with "
                 f"`# wire: <record>` or mark it one-sided)",
                 f"orphan.{ref.fmt}.{only}")
    return findings


def _check_endpoints(merged) -> list[ProtoFinding]:
    """DT902 over the merged per-endpoint facts: every receivable tag
    handled per annotated group, and a sink per dispatching endpoint."""
    findings: list[ProtoFinding] = []
    for name in sorted(merged):
        facts = merged[name]
        spec = ENDPOINTS.get(name)
        if spec is None:
            continue
        for state in sorted(facts.anchors,
                            key=lambda s: (s is None, s or "")):
            path, line = facts.anchors[state]
            handled = set(facts.handles.get(state, ()))
            if state is None:
                # endpoint-level scopes also see the tags their
                # state-pinned siblings handle (one class, many faces)
                for other in facts.handles.values():
                    handled |= set(other)
                expected = spec.receivable()
            else:
                expected = spec.states[state].receives
            for tag in sorted(expected - handled):
                where = f"{name}@{state}" if state else name
                findings.append(ProtoFinding(
                    path=path, line=line, rule="DT902",
                    message=(
                        f"{where} never dispatches receivable tag "
                        f"{tag!r} (spec: protocol_spec.ENDPOINTS"
                        f"[{name!r}]); add a handler branch or the "
                        f"peer's send is silently dropped"),
                    key=f"{_baseline_path(path)}:DT902:"
                        f"{name}.{state or '*'}.{tag}"))
        if facts.anchors and not facts.has_sink:
            state, (path, line) = sorted(
                facts.anchors.items(),
                key=lambda kv: kv[1])[0]
            findings.append(ProtoFinding(
                path=path, line=line, rule="DT902",
                message=(
                    f"endpoint {name!r} dispatches protocol traffic "
                    f"but owns no unknown-control sink: unrecognized "
                    f"tags vanish without a counter (add e.g. "
                    f"`self.unknown_controls += 1` in the else branch)"),
                key=f"{_baseline_path(path)}:DT902:{name}.unknown-sink"))
    return findings


def _check_spec_exercise(merged, spec_path: str) -> list[ProtoFinding]:
    """Spec-gated DT903/DT904: the spec itself must be consistent,
    reachable, exercised by code, and in sync with the registry."""
    findings: list[ProtoFinding] = []
    key_path = _baseline_path(spec_path)

    def emit(rule, message, key, line=1):
        findings.append(ProtoFinding(
            path=spec_path, line=line, rule=rule, message=message,
            key=f"{key_path}:{rule}:{key}"))

    for problem in spec_errors():
        emit("DT904", f"protocol_spec inconsistency: {problem}",
             f"spec.invalid.{problem.split(':')[0]}")

    for name, ep in sorted(ENDPOINTS.items()):
        # reachability from the initial state over the transition graph
        seen = {ep.initial}
        frontier = [ep.initial]
        while frontier:
            state = frontier.pop()
            for target in ep.states.get(
                    state, type("S", (), {"transitions": {}})
            ).transitions.values():
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        for state in sorted(set(ep.states) - seen):
            emit("DT904",
                 f"spec state {name}.{state} is unreachable from "
                 f"{name}.{ep.initial} via the transition graph",
                 f"spec.unreachable.{name}.{state}")
        # peer acceptance: everything a state sends must be receivable
        # in every state it may be paired with
        for sname, state in sorted(ep.states.items()):
            for peer in sorted(state.peer_states):
                pep, _, pstate = peer.partition(".")
                peer_spec = ENDPOINTS.get(pep)
                if peer_spec is None or pstate not in peer_spec.states:
                    continue  # spec_errors already reported it
                refused = state.sends - peer_spec.states[pstate].receives
                for tag in sorted(refused):
                    emit("DT903",
                         f"spec: {name}.{sname} sends {tag!r} but peer "
                         f"state {peer} does not receive it",
                         f"spec.refused.{name}.{sname}.{tag}.{peer}")
        # dead spec sends: the spec promises traffic no code emits
        facts = merged.get(name)
        if facts is not None and (facts.anchors or facts.sends):
            sent = {tag for tag, _, _, _ in facts.sends}
            for tag in sorted(ep.sendable() - sent):
                emit("DT904",
                     f"spec says endpoint {name!r} sends {tag!r} but "
                     f"no annotated code constructs that message — "
                     f"dead spec surface or missing implementation",
                     f"spec.unsent.{name}.{tag}")

    spec_receives = set()
    spec_sends = set()
    for ep in ENDPOINTS.values():
        spec_receives |= ep.receivable()
        spec_sends |= ep.sendable()
    for tag in sorted(CONTROL_TAGS - spec_receives):
        emit("DT904",
             f"registry drift: CONTROL_TAGS registers {tag!r} but no "
             f"spec endpoint receives it",
             f"spec.drift.unreceived.{tag}")
    for tag in sorted(CONTROL_TAGS - spec_sends):
        emit("DT904",
             f"registry drift: CONTROL_TAGS registers {tag!r} but no "
             f"spec endpoint sends it",
             f"spec.drift.unsent.{tag}")
    return findings


# -- public API ----------------------------------------------------------------


def _scan_source(source: str, path: str) -> _ModuleFacts:
    tree = ast.parse(source, filename=path)
    facts = _ModuleScan(tree, path, source).run()
    facts.disabled = _disabled_lines(source)
    return facts


def _assemble(all_facts) -> list[ProtoFinding]:
    merged = _merge_endpoint_facts(all_facts)
    findings = [f for facts in all_facts for f in facts.findings]
    findings += _check_wire_schemas(all_facts)
    findings += _check_endpoints(merged)
    spec_files = [facts.path for facts in all_facts
                  if Path(facts.path).as_posix().endswith(
                      SPEC_MODULE_SUFFIX)]
    if spec_files:
        findings += _check_spec_exercise(merged, spec_files[0])
    disabled_by_path = {facts.path: facts.disabled for facts in all_facts}
    kept = []
    for f in findings:
        disabled = disabled_by_path.get(f.path, {}).get(f.line, set())
        if f.rule in disabled or "ALL" in disabled:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
    return kept


def analyze_source(source: str,
                   path: str = "<string>") -> list[ProtoFinding]:
    """Analyze one source string as a self-contained protocol program;
    the spec-exercise checks stay off unless ``path`` is the spec."""
    return _assemble([_scan_source(source, path)])


def _iter_files(paths):
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not SKIPPED_TREE_PARTS.intersection(sub.parts):
                    yield sub


def analyze_paths(paths) -> list[ProtoFinding]:
    """Analyze every ``.py`` under ``paths`` (tests/benchmarks/examples
    pruned from tree traversal; explicit files always analyzed).  The
    wire-pairing and endpoint automata are checked across the whole
    set; spec-exercise checks activate when the spec module is in it."""
    all_facts = []
    for path in _iter_files(paths):
        all_facts.append(_scan_source(path.read_text(), str(path)))
    return _assemble(all_facts)


BASELINE_COMMENT = (
    "Grandfathered DT90x protocol-conformance findings; every entry "
    "needs a written justification. Regenerate with "
    "`repro lint --update-baseline` (see docs/devtools.md)."
)


def load_baseline(path: str | Path | None,
                  disabled: bool = False) -> Baseline:
    """The baseline to apply: empty when disabled or the file is absent."""
    if disabled:
        return Baseline.empty()
    p = Path(path if path is not None else DEFAULT_BASELINE)
    if p.is_file():
        return Baseline.load(p)
    return Baseline.empty()


# -- Graphviz rendering of the spec --------------------------------------------


def render_dot(endpoints=None) -> str:
    """The spec automata as a deterministic Graphviz digraph: one
    cluster per endpoint, solid edges for transitions, dashed gray
    edges for the tags a state sends to each paired peer state."""
    endpoints = endpoints if endpoints is not None else ENDPOINTS
    lines = [
        "// generated by `repro lint --emit-proto-dot` from",
        "// src/repro/daemon/protocol_spec.py -- do not edit by hand",
        "digraph protocol {",
        "  rankdir=LR;",
        "  fontname=\"Helvetica\";",
        "  node [shape=box, style=rounded, fontname=\"Helvetica\"];",
        "  edge [fontname=\"Helvetica\", fontsize=10];",
    ]
    for name in sorted(endpoints):
        ep = endpoints[name]
        lines.append(f"  subgraph cluster_{name} {{")
        lines.append(f"    label=\"{name}\";")
        lines.append(f"    \"{name}.__start\" [shape=point, label=\"\"];")
        for sname in sorted(ep.states):
            state = ep.states[sname]
            recv = ", ".join(sorted(state.receives)) or "-"
            lines.append(
                f"    \"{name}.{sname}\" "
                f"[label=\"{sname}\\nrecv: {recv}\"];")
        lines.append(f"    \"{name}.__start\" -> \"{name}.{ep.initial}\";")
        for sname in sorted(ep.states):
            for event in sorted(ep.states[sname].transitions):
                target = ep.states[sname].transitions[event]
                lines.append(
                    f"    \"{name}.{sname}\" -> \"{name}.{target}\" "
                    f"[label=\"{event}\"];")
        lines.append("  }")
    for name in sorted(endpoints):
        ep = endpoints[name]
        for sname in sorted(ep.states):
            state = ep.states[sname]
            if not state.sends:
                continue
            label = ", ".join(sorted(state.sends))
            for peer in sorted(state.peer_states):
                lines.append(
                    f"  \"{name}.{sname}\" -> \"{peer}\" "
                    f"[style=dashed, color=gray50, "
                    f"label=\"{label}\", constraint=false];")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- CLI -----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro protoflow",
        description="protocol-conformance analyzer (DT901-DT904)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline and report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "(justifications of surviving entries are kept)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--emit-dot", metavar="FILE",
                        help="write the spec automata as Graphviz DOT "
                             "and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(PROTOFLOW_RULES):
            print(f"{rule_id}  {PROTOFLOW_RULES[rule_id]}")
        return 0
    if args.emit_dot:
        Path(args.emit_dot).write_text(render_dot())
        print(f"wrote {args.emit_dot}")
        return 0
    findings = analyze_paths(args.paths)
    baseline = load_baseline(args.baseline, disabled=args.no_baseline)
    if args.update_baseline:
        Baseline.write(Path(args.baseline), findings, previous=baseline,
                       comment=BASELINE_COMMENT)
        print(f"wrote {args.baseline}: {len(findings)} grandfathered "
              f"finding(s)")
        return 0
    fresh, matched = baseline.filter(findings)
    for f in fresh:
        print(f)
    n_files = sum(1 for _ in _iter_files(args.paths))
    stale = baseline.stale_keys(findings)
    suffix = f", {len(matched)} baselined" if matched else ""
    if stale and not args.no_baseline:
        print(f"note: {len(stale)} stale baseline entrie(s) no longer fire: "
              + ", ".join(stale))
    if fresh:
        print(f"\n{len(fresh)} new finding(s) in {n_files} file(s){suffix}")
        return 1
    print(f"protoflow clean: {n_files} file(s), 0 new findings{suffix}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
