"""Static resource-lifecycle analyzer: leak/double-close/use-after-close.

:mod:`repro.devtools.lockset` proves lock discipline statically; this
module does the same for *resource* discipline, in the style of Infer's
Pulse.  It parses each module's AST and simulates every function along
its exception edges, tracking acquire/release pairs for the resource
kinds this codebase actually owns: sockets and
``FramedConnection``/``TcpConnection`` endpoints, ``threading.Thread``
start/join, ``SharedMemory`` create/close/unlink, file handles,
``Channel`` pairs, daemon-like objects (brokers, relays, pools,
servers), session handles returned by ``broker.join(...)``, and cache
pins.  A call that can raise while an acquired resource is live — with
no enclosing ``try`` that releases it in a handler or ``finally`` — is
a leak on that exception edge, which is exactly how long-lived daemon
tiers bleed fds and threads under churn.

**Ownership transfer counts as release**: passing a resource to another
call (``ViewerSession(conn)``, ``Thread(args=(q,))``), storing it in a
container or ``self`` field, or returning/yielding it hands the
lifecycle to the new owner, so broker→pump and ingest→player handoffs
do not false-positive.

==========  ============================================================
rule        meaning
==========  ============================================================
``DT801``   leak on an exception path: an acquired resource is not
            released (or handed off) on a raising edge — includes
            constructor leaks (``__init__`` acquires, then raises) and
            overwriting an owned field without releasing the old value
``DT802``   double close/unlink: the same verb applied twice to the
            same resource on one path
``DT803``   use after close: a non-lifecycle method called on a
            resource after ``close()``/``unlink()``/``leave()``
``DT804``   close-graph completeness: a daemon-like class (one with a
            ``close``/``stop``/``shutdown``/``kill`` method) acquires a
            resource into a field that nothing reachable from its
            shutdown surface ever releases
==========  ============================================================

Declaring intent
----------------
Two machine-checked comment annotations teach the analyzer ownership:

- ``# owns: _peers`` (in a class body) declares a field that holds
  resources even though the analyzer cannot see the acquire — its
  release is then checked by DT804;
- ``# borrows: _slot_of`` declares a field that only *references*
  resources owned elsewhere, exempting it from DT804.

Both accept a comma-separated name list and optional ``--`` prose.  The
line-scoped ``# lint: disable=DT801`` pragma from
:mod:`repro.devtools.lint` silences a single finding.

Baseline
--------
Same workflow as the lockset analyzer: grandfathered findings live in a
committed ``resourceflow_baseline.json`` keyed by
``path:rule:Class.context`` (line-independent), every entry carries a
written justification, CI fails on new findings and on stale entries.
Regenerate with ``repro lint --update-baseline``.

Run with ``make analyze``, ``python -m repro.devtools.resource_flow
[paths]``, or as part of ``repro lint`` / ``make lint``.  The static
pass is complemented at runtime by
:mod:`repro.devtools.locktrace`'s ``ThreadLeakGuard``, which catches
the leaks that only manifest on real schedules.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint import _disabled_lines
from repro.devtools.lockset import (
    SKIPPED_TREE_PARTS,
    Baseline,
    LocksetFinding,
    _baseline_path,
)

__all__ = [
    "RESOURCE_RULES",
    "DEFAULT_BASELINE",
    "ResourceKind",
    "ResourceFinding",
    "analyze_source",
    "analyze_paths",
    "load_baseline",
    "main",
]

RESOURCE_RULES: dict[str, str] = {
    "DT801": "resource leaked on an exception path",
    "DT802": "double close/unlink of the same resource",
    "DT803": "use of a resource after it was closed",
    "DT804": "daemon-like class whose close() graph never releases an "
             "acquired field",
}

#: default baseline filename, resolved against the working directory
DEFAULT_BASELINE = "resourceflow_baseline.json"

#: method names that make a class "daemon-like" (it owns a shutdown
#: surface) and that, called on ``self`` from an except handler, count
#: as cleaning up every field resource
CLOSE_VERBS = frozenset({"close", "stop", "shutdown", "kill"})

#: verbs that release *some* kind of resource — used when scanning a
#: class's close graph for field releases (the field's own kind narrows
#: this in the per-method simulation)
_ANY_RELEASE_VERBS = frozenset(
    {"close", "stop", "shutdown", "kill", "leave", "join", "unlink",
     "terminate", "unpin"}
)

#: verbs that mark a name closed for the DT802/DT803 passes
_MARKING_VERBS = frozenset({"close", "unlink", "leave"})

#: lifecycle/query methods that are fine on an already-closed resource
_SAFE_AFTER_CLOSE = frozenset(
    {"close", "unlink", "join", "is_alive", "leave", "kill", "stop",
     "shutdown", "terminate", "unpin", "release", "is_closed", "closed",
     "empty", "qsize", "done", "cancel"}
)

#: calls (canonical dotted names) that cannot meaningfully raise —
#: they never interrupt a live resource's path to its release
_SAFE_CALLS = frozenset(
    {"len", "isinstance", "issubclass", "repr", "str", "int", "float",
     "bool", "bytes", "min", "max", "abs", "round", "sorted", "list",
     "dict", "set", "tuple", "frozenset", "enumerate", "zip", "range",
     "id", "hash", "format", "print", "getattr", "hasattr", "setattr",
     "type", "sum", "any", "all", "map", "filter", "callable", "vars",
     "divmod", "super", "time.monotonic", "time.perf_counter",
     "time.sleep", "threading.Event", "threading.Lock",
     "threading.RLock", "threading.Condition"}
)

#: method names (by attribute) that cannot meaningfully raise: container
#: mutators, synchronization primitives, and the repo's counter surfaces
_SAFE_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "insert", "clear",
     "discard", "update", "setdefault", "copy", "get", "items", "keys",
     "values", "set", "is_set", "wait", "notify", "notify_all",
     "acquire", "release", "locked", "is_alive", "note_sent",
     "note_received", "note_retransmit", "unlog_received",
     "_count_reject"}
)

_OWNS_RE = re.compile(
    r"\b(owns|borrows):\s*"
    r"([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)"
)

_INIT_LIKE = frozenset({"__init__", "__post_init__", "start"})


# -- resource kinds -----------------------------------------------------------


@dataclass(frozen=True)
class ResourceKind:
    """One class of tracked resource: its release verbs and whether an
    unreleased instance on a raising edge is a real leak (in-process
    queue pairs are GC-collectable, OS handles are not)."""

    name: str
    release_verbs: frozenset[str]
    leaks_on_exception: bool = True


KIND_FILE = ResourceKind("file handle", frozenset({"close"}))
KIND_SOCKET = ResourceKind("socket", frozenset({"close", "detach"}))
KIND_THREAD = ResourceKind("thread", frozenset({"join"}))
KIND_PROCESS = ResourceKind(
    "process", frozenset({"join", "terminate", "kill", "close"})
)
KIND_SHM = ResourceKind(
    "shared-memory segment", frozenset({"close", "unlink"})
)
KIND_CHANNEL = ResourceKind(
    "channel", frozenset({"close"}), leaks_on_exception=False
)
KIND_CONNECTION = ResourceKind(
    "in-process connection", frozenset({"close"}), leaks_on_exception=False
)
KIND_TCP = ResourceKind("tcp connection", frozenset({"close"}))
KIND_DAEMON = ResourceKind(
    "daemon object", frozenset({"close", "stop", "shutdown", "kill"})
)
KIND_HANDLE = ResourceKind(
    "session handle", frozenset({"leave", "close", "kill"})
)
#: kind assigned to ``# owns:`` fields whose acquire is invisible
KIND_OWNED = ResourceKind("declared-owned resource", _ANY_RELEASE_VERBS)

#: exact canonical dotted names -> kind
_CTOR_FULL = {
    "open": KIND_FILE,
    "socket.socket": KIND_SOCKET,
    "socket.create_connection": KIND_SOCKET,
}
#: last dotted component -> kind (constructors imported under any path)
_CTOR_LAST = {
    "Thread": KIND_THREAD,
    "Process": KIND_PROCESS,
    "SharedMemory": KIND_SHM,
    "Channel": KIND_CHANNEL,
    "FaultyChannel": KIND_CHANNEL,
    "FramedConnection": KIND_CONNECTION,
    "FaultyConnection": KIND_CONNECTION,
    "TcpConnection": KIND_TCP,
    "connect_daemon": KIND_TCP,
    "create_connection": KIND_SOCKET,
    "SessionBroker": KIND_DAEMON,
    "SessionRouter": KIND_DAEMON,
    "FrameRelay": KIND_DAEMON,
    "EncodePool": KIND_DAEMON,
    "DisplayDaemon": KIND_DAEMON,
    "TcpDaemonServer": KIND_DAEMON,
    "TimelinePrefetcher": KIND_DAEMON,
    "ViewerHandle": KIND_HANDLE,
}
#: constructors whose ``daemon=True`` keyword waives tracking entirely:
#: a daemonic thread/process dies with the parent by design
_DAEMONIZABLE = (KIND_THREAD, KIND_PROCESS)


class ResourceFinding(LocksetFinding):
    """A DT80x finding plus its line-independent baseline key."""


# -- small AST helpers --------------------------------------------------------


def _attr_path(node: ast.AST) -> list[str] | None:
    """``self._listener.close`` -> ``["self", "_listener", "close"]``;
    None when the chain is not rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _direct_names(expr: ast.AST, out: set[str]) -> None:
    """Dotted paths whose *value itself* flows somewhere: ``x``,
    ``self.daemon``, elements of tuples/lists, either arm of an
    ``IfExp``.  ``seg._name`` yields ``seg._name`` (not ``seg``) — a
    derived attribute is not the resource."""
    if isinstance(expr, (ast.Name, ast.Attribute)):
        path = _attr_path(expr)
        if path is not None:
            out.add(".".join(path))
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for elt in expr.elts:
            _direct_names(elt, out)
    elif isinstance(expr, ast.Starred):
        _direct_names(expr.value, out)
    elif isinstance(expr, ast.Dict):
        for value in expr.values:
            _direct_names(value, out)
    elif isinstance(expr, ast.IfExp):
        _direct_names(expr.body, out)
        _direct_names(expr.orelse, out)


def _walk_no_defs(node: ast.AST):
    """Pre-order (source-order) walk that does not descend into
    deferred bodies; source order matters for alias tracking."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        yield from _walk_no_defs(child)


# -- per-module scan ----------------------------------------------------------


class _ModuleScan:
    """One file: aliases, ownership comments, module-local daemon
    classes, return-kind summaries, then the per-scope passes."""

    def __init__(self, tree: ast.Module, path: str, source: str):
        self.tree = tree
        self.path = path
        self.aliases = self._collect_aliases()
        self.ownership = self._collect_ownership(source)
        #: module-local classes with a shutdown surface act like the
        #: curated daemon constructors (e.g. faultrun._ResilientViewer)
        self.local_daemons: set[str] = {
            node.name
            for node in tree.body
            if isinstance(node, ast.ClassDef) and any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in CLOSE_VERBS
                for stmt in node.body
            )
        }
        #: module function name -> kind it returns (transfer-by-return)
        self.returns: dict[str, ResourceKind] = {}
        self.findings: list[ResourceFinding] = []

    def _collect_aliases(self) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        aliases[a.asname] = a.name
                    else:
                        root = a.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        return aliases

    @staticmethod
    def _collect_ownership(source: str) -> dict[int, tuple[str, list[str]]]:
        """line -> ("owns"|"borrows", [field names]) from comments."""
        import io
        import tokenize

        found: dict[int, tuple[str, list[str]]] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type != tokenize.COMMENT:
                    continue
                m = _OWNS_RE.search(tok.string)
                if m:
                    names = [n.strip() for n in m.group(2).split(",")]
                    found[tok.start[0]] = (m.group(1), names)
        except tokenize.TokenError:
            pass  # surfaces as the ast.parse error instead
        return found

    def dotted(self, node: ast.AST) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    # -- acquire-expression classification ------------------------------------

    def acquire_kind(self, expr: ast.AST) -> ResourceKind | None:
        """The resource kind acquired by ``expr``, or None."""
        if not isinstance(expr, ast.Call):
            return None
        dotted = self.dotted(expr.func)
        kind: ResourceKind | None = None
        if dotted is not None:
            last = dotted.split(".")[-1]
            kind = _CTOR_FULL.get(dotted) or _CTOR_LAST.get(last)
            if kind is None and last in self.local_daemons:
                kind = KIND_DAEMON
            if kind is None:
                kind = self.returns.get(last) if last == dotted else None
        if kind is None and isinstance(expr.func, ast.Attribute):
            attr = expr.func.attr
            if (
                attr == "join"
                and expr.keywords
                and not isinstance(expr.func.value, ast.Constant)
            ):
                # broker.join(name, fault_plan=..., ...) returns a
                # session handle; str.join / Thread.join never take
                # keyword arguments
                kind = KIND_HANDLE
            elif attr == "accept":
                kind = KIND_SOCKET
        if kind in _DAEMONIZABLE and any(
            kw.arg == "daemon"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in expr.keywords
        ):
            return None
        return kind

    def safe_call(self, call: ast.Call) -> bool:
        dotted = self.dotted(call.func)
        if dotted is not None and (
            dotted in _SAFE_CALLS or dotted.split(".")[-1] in _SAFE_CALLS
        ):
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _SAFE_METHODS
        )

    def may_raise(self, stmt: ast.AST) -> int | None:
        """First line in ``stmt`` that can raise, or None."""
        for node in _walk_no_defs(stmt):
            if isinstance(node, (ast.Raise, ast.Assert)):
                return node.lineno
            if isinstance(node, ast.Call) and not self.safe_call(node):
                return node.lineno
        return None

    # -- driving --------------------------------------------------------------

    def report(self, line: int, rule: str, context: str,
               message: str) -> None:
        key = f"{_baseline_path(self.path)}:{rule}:{context}"
        self.findings.append(
            ResourceFinding(path=self.path, line=line, rule=rule,
                            message=f"{context}: {message}", key=key)
        )

    def run(self) -> list[ResourceFinding]:
        funcs = [n for n in self.tree.body
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        classes = [n for n in self.tree.body
                   if isinstance(n, ast.ClassDef)]
        # pass A: summaries (return kinds first, so `conn =
        # connect_daemon(...)`-style acquires resolve in pass B)
        summaries = [_summarize_function(self, None, f) for f in funcs]
        for summary in summaries:
            if summary.returns_kind is not None:
                self.returns[summary.name] = summary.returns_kind
        class_scans = [_ClassScan(self, node) for node in classes]
        # pass B: per-scope simulation + class-level rules
        for f in funcs:
            _FlowSim(self, None, f, f.name).run()
            _ClosePass(self, f, f.name).run()
        for scan in class_scans:
            scan.check()
        self.findings.sort(key=lambda f: (f.line, f.rule))
        return self.findings


# -- pass A: per-function summary ---------------------------------------------


@dataclass
class _FuncSummary:
    name: str
    #: fields assigned an acquire expression: field -> (kind, line)
    field_acquires: dict[str, tuple[ResourceKind, int]] = field(
        default_factory=dict)
    #: fields whose resources this method releases: field -> first line
    released_fields: dict[str, int] = field(default_factory=dict)
    #: self-method call targets
    self_calls: set[str] = field(default_factory=set)
    returns_kind: ResourceKind | None = None
    pin_line: int | None = None
    has_unpin: bool = False


def _summarize_function(module: _ModuleScan, cls_name: str | None,
                        func,
                        class_returns: dict[str, ResourceKind] | None = None,
                        ) -> _FuncSummary:
    """Linear scan: field acquires, alias-aware field releases, call
    edges, pin/unpin use, and the kind of a returned local."""
    out = _FuncSummary(name=func.name)
    args = func.args.posonlyargs + func.args.args
    self_name = args[0].arg if (cls_name is not None and args) else None
    local_kinds: dict[str, ResourceKind] = {}
    #: local name -> field it aliases (x = self.F, for x in self.F, ...)
    alias: dict[str, str] = {}
    #: locals whose ownership moved into a self field; returning one of
    #: these hands the caller a borrow, not the resource itself
    stored_to_field: set[str] = set()

    def acquire_kind(value: ast.AST) -> ResourceKind | None:
        kind = module.acquire_kind(value)
        if kind is None and class_returns and isinstance(value, ast.Call):
            path = _attr_path(value.func)
            if (path is not None and self_name is not None
                    and len(path) == 2 and path[0] == self_name):
                kind = class_returns.get(path[1])
        return kind

    def field_of(path: list[str]) -> str | None:
        """The field a dotted path is rooted in, via self or an alias."""
        if self_name is not None and len(path) >= 2 and path[0] == self_name:
            return path[1]
        return alias.get(path[0])

    def alias_source(value: ast.AST) -> str | None:
        """The field ``value`` reads: ``self.F``, ``list(self.F)``,
        ``self.F.values()/items()/keys()``, or an existing alias."""
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Attribute) and value.func.attr in (
                "values", "items", "keys"
            ):
                return alias_source(value.func.value)
            if (
                isinstance(value.func, ast.Name)
                and value.func.id in ("list", "tuple", "sorted", "reversed")
                and value.args
            ):
                return alias_source(value.args[0])
            return None
        path = _attr_path(value)
        return field_of(path) if path else None

    for node in _walk_no_defs(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            value = node.value
            kind = acquire_kind(value) if value is not None else None
            src = alias_source(value) if value is not None else None
            for target in targets:
                if isinstance(target, ast.Name):
                    if kind is not None:
                        local_kinds[target.id] = kind
                        alias.pop(target.id, None)
                    elif src is not None:
                        alias[target.id] = src
                elif isinstance(target, ast.Attribute):
                    path = _attr_path(target)
                    if (
                        path is not None
                        and self_name is not None
                        and len(path) == 2
                        and path[0] == self_name
                    ):
                        stored = kind
                        if stored is None and isinstance(value, ast.Name):
                            stored = local_kinds.get(value.id)
                        if stored is not None:
                            out.field_acquires.setdefault(
                                path[1], (stored, node.lineno))
                        if isinstance(value, ast.Name):
                            stored_to_field.add(value.id)
                elif isinstance(target, ast.Subscript):
                    path = _attr_path(target.value)
                    f = field_of(path) if path else None
                    if f is not None:
                        stored = kind
                        if stored is None and isinstance(value, ast.Name):
                            stored = local_kinds.get(value.id)
                        if stored is not None:
                            out.field_acquires.setdefault(
                                f, (stored, node.lineno))
                elif isinstance(target, (ast.Tuple, ast.List)):
                    if isinstance(value, ast.Call) and isinstance(
                        value.func, ast.Attribute
                    ) and value.func.attr == "pair":
                        base = module.dotted(value.func.value)
                        pair_kind = _CTOR_LAST.get(
                            base.split(".")[-1]) if base else None
                        if pair_kind is not None:
                            for elt in target.elts:
                                if isinstance(elt, ast.Name):
                                    local_kinds[elt.id] = pair_kind
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            src = alias_source(node.iter)
            if src is not None:
                names = [node.target] if isinstance(node.target, ast.Name) \
                    else list(getattr(node.target, "elts", []))
                for elt in names:
                    if isinstance(elt, ast.Name):
                        alias[elt.id] = src
        elif isinstance(node, ast.Call):
            path = _attr_path(node.func)
            if path is not None:
                verb = path[-1]
                if verb in ("pin", "get_pinned") and out.pin_line is None:
                    out.pin_line = node.lineno
                if verb == "unpin":
                    out.has_unpin = True
                if (
                    self_name is not None
                    and len(path) == 2
                    and path[0] == self_name
                ):
                    out.self_calls.add(verb)
                f = field_of(path[:-1]) if len(path) >= 2 else None
                if f is not None and verb in _ANY_RELEASE_VERBS:
                    prev = out.released_fields.get(f)
                    if prev is None or node.lineno < prev:
                        out.released_fields[f] = node.lineno
            # a container-append of a kind-tracked local owns the
            # resource into that field: self._all_slots.append(slot)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "add", "appendleft")
            ):
                recv = _attr_path(node.func.value)
                f = field_of(recv) if recv else None
                if f is not None:
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and \
                                arg.id in local_kinds:
                            out.field_acquires.setdefault(
                                f, (local_kinds[arg.id], node.lineno))
            # passing a field (or an alias of it) to a helper transfers
            # its contents: _teardown(self._viewers, ...)
            if not module.safe_call(node):
                handed: set[str] = set()
                for arg in node.args:
                    _direct_names(arg, handed)
                for kw in node.keywords:
                    _direct_names(kw.value, handed)
                for name in handed:
                    f = field_of(name.split("."))
                    if f is not None:
                        prev = out.released_fields.get(f)
                        if prev is None or node.lineno < prev:
                            out.released_fields[f] = node.lineno
        elif isinstance(node, ast.Return) and node.value is not None:
            kind = acquire_kind(node.value)
            if kind is None and isinstance(node.value, ast.Name):
                if node.value.id not in stored_to_field:
                    kind = local_kinds.get(node.value.id)
            if kind is not None:
                out.returns_kind = kind
    return out


# -- pass B: per-class rules --------------------------------------------------


class _ClassScan:
    """One class: summaries for every method, then DT801 simulation per
    method, the overwrite rule, the pin rule, and DT804."""

    def __init__(self, module: _ModuleScan, node: ast.ClassDef):
        self.module = module
        self.node = node
        self.methods: dict[str, ast.AST] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        self.summaries: dict[str, _FuncSummary] = {
            name: _summarize_function(module, node.name, f)
            for name, f in self.methods.items()
        }
        #: method -> kind returned, for self._helper() acquires
        self.returns: dict[str, ResourceKind] = {
            name: s.returns_kind
            for name, s in self.summaries.items()
            if s.returns_kind is not None
        }
        if self.returns:
            # second pass: methods that store the result of an acquiring
            # helper (slot = self._acquire_slot_locked(...)) own it too
            self.summaries = {
                name: _summarize_function(module, node.name, f, self.returns)
                for name, f in self.methods.items()
            }
        self.owned_annotated: set[str] = set()
        self.borrowed: set[str] = set()
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        for line, (which, names) in module.ownership.items():
            if node.lineno <= line <= end:
                (self.owned_annotated if which == "owns"
                 else self.borrowed).update(
                    n[5:] if n.startswith("self.") else n for n in names)
        self.daemon_like = bool(CLOSE_VERBS & set(self.methods))

    # -- aggregate views ------------------------------------------------------

    def field_kind(self, name: str) -> ResourceKind | None:
        for s in self.summaries.values():
            if name in s.field_acquires:
                return s.field_acquires[name][0]
        return KIND_OWNED if name in self.owned_annotated else None

    def releases_field(self, method: str, name: str,
                       before: int | None = None) -> bool:
        s = self.summaries.get(method)
        if s is None or name not in s.released_fields:
            return False
        return before is None or s.released_fields[name] < before

    def _close_graph(self) -> set[str]:
        roots = {m for m in self.methods
                 if m in CLOSE_VERBS or m in ("__exit__", "__del__")}
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            for callee in self.summaries[name].self_calls:
                if callee in self.methods and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    # -- rules ----------------------------------------------------------------

    def check(self) -> None:
        cls = self.node.name
        for name, func in self.methods.items():
            _FlowSim(self.module, self, func, f"{cls}.{name}").run()
            _ClosePass(self.module, func, f"{cls}.{name}").run()
        self._check_overwrites()
        self._check_pins()
        if self.daemon_like:
            self._check_close_graph()

    def _check_overwrites(self) -> None:
        """DT801: reassigning an owned field without releasing the old
        value first (the reconnect-leak shape)."""
        cls = self.node.name
        for name, func in self.methods.items():
            if name in _INIT_LIKE:
                continue
            summary = self.summaries[name]
            local_kinds: dict[str, ResourceKind] = {}
            for node in _walk_no_defs(func):
                if not isinstance(node, ast.Assign):
                    continue
                kind = self.module.acquire_kind(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name) and kind is not None:
                        local_kinds[target.id] = kind
                        continue
                    if not isinstance(target, ast.Attribute):
                        continue
                    path = _attr_path(target)
                    if path is None or len(path) != 2:
                        continue
                    fname = path[1]
                    stored = kind
                    if stored is None and isinstance(node.value, ast.Name):
                        stored = local_kinds.get(node.value.id)
                    if stored is None or not stored.leaks_on_exception:
                        continue
                    owned = self.field_kind(fname)
                    if owned is None or fname in self.borrowed:
                        continue
                    if not self.releases_field(name, fname,
                                               before=node.lineno):
                        self.module.report(
                            node.lineno, "DT801", f"{cls}.{name}.{fname}",
                            f"self.{fname} ({owned.name}) is overwritten "
                            f"without releasing the previous value; close "
                            f"the old one before rebinding the field",
                        )

    def _check_pins(self) -> None:
        """DT801: a class that pins cache entries but never unpins
        (skipped for the class that *provides* pin/unpin)."""
        if {"pin", "unpin"} <= set(self.methods):
            return
        pin_lines = [s.pin_line for s in self.summaries.values()
                     if s.pin_line is not None]
        if not pin_lines:
            return
        if any(s.has_unpin for s in self.summaries.values()):
            return
        self.module.report(
            min(pin_lines), "DT801", f"{self.node.name}.pin",
            "cache entries are pinned here but no method of this class "
            "ever unpins; pins leak refcounts until the cache dies",
        )

    def _check_close_graph(self) -> None:
        """DT804: every leaky field acquire must be released by a
        method reachable from the shutdown surface."""
        cls = self.node.name
        owned: dict[str, tuple[ResourceKind, int]] = {}
        for s in self.summaries.values():
            for fname, (kind, line) in s.field_acquires.items():
                if kind.leaks_on_exception:
                    owned.setdefault(fname, (kind, line))
        for fname in self.owned_annotated:
            owned.setdefault(fname, (KIND_OWNED, self.node.lineno))
        graph = self._close_graph()
        for fname, (kind, line) in sorted(owned.items(),
                                          key=lambda kv: kv[1][1]):
            if fname in self.borrowed:
                continue
            if any(self.releases_field(m, fname) for m in graph):
                continue
            self.module.report(
                line, "DT804", f"{cls}.{fname}",
                f"self.{fname} ({kind.name}) is acquired here but "
                f"nothing reachable from "
                f"{'/'.join(sorted(CLOSE_VERBS & set(self.methods)))}() "
                f"releases it; release it on shutdown, or annotate the "
                f"field '# borrows: {fname}' if ownership lives elsewhere",
            )


# -- pass B: DT801 exception-edge simulation ----------------------------------


@dataclass
class _Res:
    """One live tracked resource in a function simulation."""

    name: str          # "fh" or "self._listener"
    kind: ResourceKind
    line: int          # acquire line
    is_field: bool = False


class _FlowSim:
    """Walk one function in source order, tracking live resources and
    the stack of enclosing ``try`` statements that could save them."""

    def __init__(self, module: _ModuleScan, cls: _ClassScan | None,
                 func, qualname: str):
        self.module = module
        self.cls = cls
        self.func = func
        self.qualname = qualname
        args = func.args.posonlyargs + func.args.args
        self.self_name = args[0].arg if (cls is not None and args) else None
        self.tracked: dict[str, _Res] = {}
        self.try_stack: list[ast.Try] = []
        self.reported: set[str] = set()

    def run(self) -> None:
        self._block(self.func.body)
        for res in list(self.tracked.values()):
            if res.kind.leaks_on_exception and not res.is_field:
                self._leak(res, f"acquired here is never released or "
                                f"handed off in this scope")

    # -- reporting ------------------------------------------------------------

    def _leak(self, res: _Res, why: str) -> None:
        if res.name in self.reported:
            return
        self.reported.add(res.name)
        self.tracked.pop(res.name, None)
        var = res.name.split(".")[-1]
        self.module.report(
            res.line, "DT801", f"{self.qualname}.{var}",
            f"{res.name} ({res.kind.name}) {why}; release it in a "
            f"finally or hand ownership off first",
        )

    # -- acquire / release / transfer matching --------------------------------

    def _acquire_kind(self, expr: ast.AST) -> ResourceKind | None:
        kind = self.module.acquire_kind(expr)
        if kind is not None:
            return kind
        # self._helper() whose summary says it returns a resource
        if (
            self.cls is not None
            and isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == self.self_name
        ):
            return self.cls.returns.get(expr.func.attr)
        return None

    def _resolves(self, node: ast.AST, res: _Res) -> bool:
        """Does ``node``'s subtree release or take ownership of res?"""
        root = res.name.split(".")
        for sub in _walk_no_defs(node):
            if isinstance(sub, ast.Call):
                path = _attr_path(sub.func)
                if (
                    path is not None
                    and len(path) > len(root)
                    and path[:len(root)] == root
                    and path[-1] in res.kind.release_verbs
                ):
                    return True
                # a shutdown verb on self tears the whole object down,
                # releasing every field it owns
                if (
                    res.is_field
                    and path is not None
                    and len(path) == 2
                    and path[0] == self.self_name
                    and (path[1] in CLOSE_VERBS
                         or (self.cls is not None
                             and self.cls.releases_field(
                                 path[1], res.name.split(".")[-1])))
                ):
                    return True
                handed: set[str] = set()
                for arg in sub.args:
                    _direct_names(arg, handed)
                for kw in sub.keywords:
                    _direct_names(kw.value, handed)
                if res.name in handed and not self.module.safe_call(sub):
                    return True
                # a container mutator cannot raise, but it does take
                # ownership of what it stores
                if (
                    res.name in handed
                    and path is not None
                    and path[-1] in ("append", "add", "appendleft", "insert")
                ):
                    return True
            elif isinstance(sub, ast.Assign):
                targets_store = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in sub.targets
                )
                renamed = any(
                    isinstance(t, ast.Name) for t in sub.targets
                ) and isinstance(sub.value, ast.Name) \
                    and sub.value.id == res.name
                if targets_store or renamed:
                    handed = set()
                    _direct_names(sub.value, handed)
                    if res.name in handed:
                        return True
            elif isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(sub, "value", None)
                if value is not None:
                    handed = set()
                    _direct_names(value, handed)
                    if res.name in handed:
                        return True
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    handed = set()
                    _direct_names(item.context_expr, handed)
                    if res.name in handed:
                        return True
        return False

    def _protected(self, res: _Res) -> bool:
        """An enclosing try releases res in a handler or finally (for
        field resources, a handler calling a shutdown verb on self
        counts: it tears the whole object down)."""
        for t in self.try_stack:
            for stmt in t.finalbody:
                if self._resolves(stmt, res):
                    return True
            for handler in t.handlers:
                for stmt in handler.body:
                    if self._resolves(stmt, res):
                        return True
                if res.is_field and self._handler_shuts_down(handler, res):
                    return True
        return False

    def _handler_shuts_down(self, handler: ast.ExceptHandler,
                            res: _Res) -> bool:
        fname = res.name.split(".")[-1]
        for sub in _walk_no_defs(handler):
            if not (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == self.self_name):
                continue
            verb = sub.func.attr
            if verb in CLOSE_VERBS:
                return True
            if self.cls is not None and self.cls.releases_field(verb, fname):
                return True
        return False

    # -- statement walking ----------------------------------------------------

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # deferred bodies are their own scopes
        if isinstance(stmt, ast.Try):
            # handlers run when the body raised partway: resources the
            # body acquired may never have been bound, so handlers are
            # simulated against the state at try entry
            pre = dict(self.tracked)
            self.try_stack.append(stmt)
            self._block(stmt.body)
            self.try_stack.pop()
            post = self.tracked
            for handler in stmt.handlers:
                self.tracked = dict(pre)
                self._block(handler.body)
            self.tracked = post
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                handed: set[str] = set()
                _direct_names(item.context_expr, handed)
                for name in handed & set(self.tracked):
                    del self.tracked[name]  # context manager releases it
            self._block(stmt.body)
            return
        if isinstance(stmt, ast.If):
            # the branches are exclusive: each is simulated from the
            # pre-branch state, and a resource stays live afterwards if
            # either path left it live
            self._leaf_effects(stmt.test, hazard_node=stmt.test)
            pre = dict(self.tracked)
            self._block(stmt.body)
            post_body = self.tracked
            self.tracked = dict(pre)
            self._block(stmt.orelse)
            merged = dict(post_body)
            merged.update(self.tracked)
            self.tracked = {k: v for k, v in merged.items()
                            if k not in self.reported}
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._leaf_effects(stmt.iter, hazard_node=stmt.iter)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._leaf_effects(stmt.test, hazard_node=stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        # leaf statement: resolve, hazard-check, then acquire
        self._leaf_effects(stmt, hazard_node=stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            for res in list(self.tracked.values()):
                if res.kind.leaks_on_exception and not self._protected(res):
                    self._leak(
                        res,
                        f"acquired here leaks on the early "
                        f"{'return' if isinstance(stmt, ast.Return) else 'raise'}"
                        f" at line {stmt.lineno}",
                    )
            return
        self._acquires(stmt)

    def _leaf_effects(self, node: ast.AST, hazard_node: ast.AST) -> None:
        for res in list(self.tracked.values()):
            if self._resolves(node, res):
                del self.tracked[res.name]
        hazard = self.module.may_raise(hazard_node)
        if hazard is None:
            return
        for res in list(self.tracked.values()):
            if res.kind.leaks_on_exception and not self._protected(res):
                self._leak(
                    res,
                    f"acquired here can leak: line {hazard} may raise "
                    f"before it is released",
                )

    def _acquires(self, stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            if value is None:
                return
            kind = self._acquire_kind(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    self.tracked.pop(target.id, None)
                    if kind is not None and kind.leaks_on_exception:
                        self.tracked[target.id] = _Res(
                            target.id, kind, stmt.lineno)
                elif (
                    isinstance(target, ast.Attribute)
                    and kind is not None
                    and kind.leaks_on_exception
                    and self.self_name is not None
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self.self_name
                    and self.func.name in _INIT_LIKE
                ):
                    fname = f"{self.self_name}.{target.attr}"
                    if self.cls is None or \
                            target.attr not in self.cls.borrowed:
                        self.tracked[fname] = _Res(
                            fname, kind, stmt.lineno, is_field=True)
                elif isinstance(target, ast.Tuple):
                    # sock, peer = listener.accept() / a, b = X.pair()
                    if isinstance(value, ast.Call) and isinstance(
                        value.func, ast.Attribute
                    ) and value.func.attr == "accept":
                        first = target.elts[0] if target.elts else None
                        if isinstance(first, ast.Name):
                            self.tracked[first.id] = _Res(
                                first.id, KIND_SOCKET, stmt.lineno)


# -- pass B: DT802 double-close / DT803 use-after-close -----------------------


class _ClosePass:
    """Track names marked closed on each straight-line path; branches
    are explored with a copy of the state, so only same-path double
    closes and uses fire."""

    def __init__(self, module: _ModuleScan, func, qualname: str):
        self.module = module
        self.func = func
        self.qualname = qualname
        self.reported: set[tuple[str, str]] = set()

    def run(self) -> None:
        self._block(self.func.body, {})

    def _block(self, stmts, state: dict[str, tuple[str, int]]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                self._block(stmt.body, state)
                for handler in stmt.handlers:
                    self._block(handler.body, dict(state))
                self._block(stmt.orelse, state)
                self._block(stmt.finalbody, state)
            elif isinstance(stmt, ast.If):
                self._scan(stmt.test, state)
                self._block(stmt.body, dict(state))
                self._block(stmt.orelse, dict(state))
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                head = stmt.iter if isinstance(
                    stmt, (ast.For, ast.AsyncFor)) else stmt.test
                self._scan(head, state)
                self._block(stmt.body, dict(state))
                self._block(stmt.orelse, dict(state))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan(item.context_expr, state)
                self._block(stmt.body, state)
            else:
                self._scan(stmt, state)

    def _scan(self, node: ast.AST, state: dict[str, tuple[str, int]]) -> None:
        for sub in _walk_no_defs(node):
            if isinstance(sub, ast.Assign):
                # rebinding a name forgets its (and its attributes')
                # closed state
                for target in sub.targets:
                    path = _attr_path(target)
                    if path is not None:
                        prefix = ".".join(path)
                        for key in [k for k in state
                                    if k == prefix
                                    or k.startswith(prefix + ".")]:
                            del state[key]
            elif isinstance(sub, ast.Call):
                path = _attr_path(sub.func)
                if path is None or len(path) < 2:
                    continue
                base = ".".join(path[:-1])
                verb = path[-1]
                closed = state.get(base)
                if closed is not None:
                    verb0, line0 = closed
                    if verb == verb0 and verb in ("close", "unlink"):
                        self._report(
                            base, "DT802", sub.lineno,
                            f"{base}.{verb}() called again — already "
                            f"{verb}{'d' if verb.endswith('e') else 'ed'} "
                            f"at line {line0}",
                        )
                        continue
                    if verb not in _SAFE_AFTER_CLOSE:
                        self._report(
                            base, "DT803", sub.lineno,
                            f"{base}.{verb}() after {base}.{verb0}() at "
                            f"line {line0}",
                        )
                        continue
                if verb in _MARKING_VERBS and not sub.args:
                    state[base] = (verb, sub.lineno)

    def _report(self, base: str, rule: str, line: int, message: str) -> None:
        if (base, rule) in self.reported:
            return
        self.reported.add((base, rule))
        var = base.split(".")[-1]
        self.module.report(line, rule, f"{self.qualname}.{var}", message)


# -- public API ---------------------------------------------------------------


def analyze_source(source: str,
                   path: str = "<string>") -> list[ResourceFinding]:
    """Analyze one source string; returns findings not pragma-disabled."""
    tree = ast.parse(source, filename=path)
    findings = _ModuleScan(tree, path, source).run()
    disabled = _disabled_lines(source)
    kept = [
        f for f in findings
        if f.rule not in disabled.get(f.line, set())
        and "ALL" not in disabled.get(f.line, set())
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def _iter_files(paths):
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not SKIPPED_TREE_PARTS.intersection(sub.parts):
                    yield sub


def analyze_paths(paths) -> list[ResourceFinding]:
    """Analyze every ``.py`` under ``paths`` (tests/benchmarks/examples
    pruned from tree traversal; explicit files always analyzed)."""
    findings: list[ResourceFinding] = []
    for path in _iter_files(paths):
        findings.extend(analyze_source(path.read_text(), str(path)))
    return findings


BASELINE_COMMENT = (
    "Grandfathered DT80x resource-flow findings; every entry needs a "
    "written justification. Regenerate with "
    "`repro lint --update-baseline` (see docs/devtools.md)."
)


def load_baseline(path: str | Path | None,
                  disabled: bool = False) -> Baseline:
    """The baseline to apply: empty when disabled or the file is absent."""
    if disabled:
        return Baseline.empty()
    p = Path(path if path is not None else DEFAULT_BASELINE)
    if p.is_file():
        return Baseline.load(p)
    return Baseline.empty()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro resource-flow",
        description="static resource-lifecycle analyzer (DT801-DT804)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline and report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "(justifications of surviving entries are kept)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RESOURCE_RULES):
            print(f"{rule_id}  {RESOURCE_RULES[rule_id]}")
        return 0
    findings = analyze_paths(args.paths)
    baseline = load_baseline(args.baseline, disabled=args.no_baseline)
    if args.update_baseline:
        Baseline.write(Path(args.baseline), findings, previous=baseline,
                       comment=BASELINE_COMMENT)
        print(f"wrote {args.baseline}: {len(findings)} grandfathered "
              f"finding(s)")
        return 0
    fresh, matched = baseline.filter(findings)
    for f in fresh:
        print(f)
    n_files = sum(1 for _ in _iter_files(args.paths))
    stale = baseline.stale_keys(findings)
    suffix = f", {len(matched)} baselined" if matched else ""
    if stale and not args.no_baseline:
        print(f"note: {len(stale)} stale baseline entrie(s) no longer fire: "
              + ", ".join(stale))
    if fresh:
        print(f"\n{len(fresh)} new finding(s) in {n_files} file(s){suffix}")
        return 1
    print(f"resource-flow clean: {n_files} file(s), 0 new findings{suffix}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
