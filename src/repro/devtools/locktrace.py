"""Runtime lock-order and thread-leak detection for the serving stack.

Static rules cannot see the dynamic acquisition order of locks, so this
module instruments it: :class:`LockTracer` swaps
``threading.Lock``/``RLock``/``Condition`` for traced wrappers that
record, per thread, the **held -> acquired** edge set of every blocking
acquisition.  A cycle in that graph is a lock-order inversion — two
threads that interleave badly will deadlock — and is reported *without*
needing the unlucky schedule to actually happen: one thread taking
``A`` then ``B`` and another (or the same) taking ``B`` then ``A`` at
any point during the traced window is enough.

Locks are aggregated by their **creation site** (``Lock@file:line``), so
one inversion between two ``ViewerSession._lock`` instances and the
broker lock is reported once, not once per session.

The tracer also flags **locks held across blocking channel operations**
(``Channel.recv``, and ``Channel.send`` on a bounded channel): a pump
thread that blocks on the wire while holding a shared lock stalls every
other thread that needs it — the cross-stage stall the paper's
pipelined design (§3) exists to avoid.

:class:`ThreadLeakGuard` snapshots live threads around a scope and
reports any *non-daemon* thread that outlives it — the test-suite
tripwire for pump/accept threads that are spawned but never joined.

Usage (the integration suite runs under this, see
``tests/integration/conftest.py``)::

    tracer = LockTracer()
    tracer.install()
    try:
        ...  # exercise concurrent code
    finally:
        tracer.uninstall()
    report = tracer.report()
    assert not report.inversions and not report.blocking_holds

Interpreting reports: an inversion names the two creation sites and the
witnessed cycle; fix it by choosing one global order (document it where
the locks are defined) or by shrinking one critical section so the
nested acquisition disappears.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "LockTracer",
    "LockOrderInversion",
    "BlockingHold",
    "LockTraceReport",
    "ThreadLeakGuard",
    "checked",
]

# captured at import time so a tracer constructed while another tracer
# is installed still wraps the real primitives, not the other wrapper
_ORIG_LOCK = threading.Lock
_ORIG_RLOCK = threading.RLock
_ORIG_CONDITION = threading.Condition


@dataclass(frozen=True)
class LockOrderInversion:
    """Two lock sites acquired in opposite orders somewhere in the run."""

    first: str  # site already held
    second: str  # site being acquired
    thread: str
    cycle: tuple[str, ...]  # witnessed path second -> ... -> first

    def __str__(self) -> str:
        chain = " -> ".join(self.cycle + (self.cycle[0],))
        return (
            f"lock-order inversion in thread {self.thread!r}: acquired "
            f"{self.second} while holding {self.first}, but the reverse "
            f"order exists ({chain})"
        )


@dataclass(frozen=True)
class BlockingHold:
    """A blocking channel operation entered while holding locks."""

    operation: str
    locks: tuple[str, ...]
    thread: str

    def __str__(self) -> str:
        return (
            f"{self.operation} in thread {self.thread!r} while holding "
            f"{', '.join(self.locks)}: a blocked wire op must never pin a "
            "shared lock"
        )


@dataclass
class LockTraceReport:
    """Everything the tracer saw during its installed window."""

    inversions: list[LockOrderInversion] = field(default_factory=list)
    blocking_holds: list[BlockingHold] = field(default_factory=list)
    n_locks: int = 0
    n_edges: int = 0
    n_acquisitions: int = 0

    @property
    def clean(self) -> bool:
        return not self.inversions and not self.blocking_holds

    def summary(self) -> str:
        lines = [
            f"locktrace: {self.n_locks} lock site(s), {self.n_edges} "
            f"order edge(s), {self.n_acquisitions} acquisition(s)",
        ]
        lines.extend(f"  INVERSION: {v}" for v in self.inversions)
        lines.extend(f"  BLOCKING-HOLD: {b}" for b in self.blocking_holds)
        if self.clean:
            lines.append("  no inversions, no blocking holds")
        return "\n".join(lines)


def _interpreter_internal_wait() -> bool:
    """True when a ``Condition.wait`` was reached through two or more
    stdlib ``threading.py`` frames — ``Thread.start()`` waiting on its
    ``_started`` handshake, not application code blocking.  A direct
    ``cond.wait()`` (zero threading frames) or a user ``event.wait()``
    (one: ``Event.wait``) is application-level and stays reportable."""
    frame = sys._getframe(2)  # caller of _TracedCondition.wait/wait_for
    n_threading = 0
    while frame is not None and frame.f_code.co_filename.replace(
        "\\", "/"
    ).endswith("/threading.py"):
        n_threading += 1
        frame = frame.f_back
    return n_threading >= 2


def _caller_site(kind: str, depth: int) -> str:
    frame = sys._getframe(depth)
    path = frame.f_code.co_filename.replace("\\", "/")
    short = "/".join(path.split("/")[-2:])
    return f"{kind}@{short}:{frame.f_lineno}"


class _TracedLock:
    """API-compatible wrapper around a real Lock/RLock."""

    def __init__(self, tracer: "LockTracer", inner, site: str):
        self._tracer = tracer
        self._inner = inner
        self.site = site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._tracer._before_acquire(self)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._tracer._push_held(self)
        return got

    def release(self) -> None:
        self._inner.release()
        self._tracer._pop_held(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __getattr__(self, item):  # _at_fork_reinit, _is_owned, ...
        return getattr(self._inner, item)

    def __repr__(self) -> str:
        return f"<TracedLock {self.site} wrapping {self._inner!r}>"


class _TracedCondition:
    """Traced ``threading.Condition``: acquisition is tracked like a
    lock; ``wait`` suspends the held record (the real condition drops
    the real lock inside) and restores it on wakeup."""

    def __init__(self, tracer: "LockTracer", site: str, lock=None):
        self._tracer = tracer
        self.site = site
        #: when built over a traced lock, delegate held-tracking to it
        self._owner: _TracedLock | None = None
        if lock is None:
            inner_lock = tracer._orig_rlock()
        elif isinstance(lock, _TracedLock):
            self._owner = lock
            inner_lock = lock._inner
        else:
            inner_lock = lock
        self._inner = tracer._orig_condition(inner_lock)

    # -- lock surface --------------------------------------------------------

    def _tracked(self):
        return self._owner if self._owner is not None else self

    def acquire(self, *args, **kwargs) -> bool:
        if self._owner is not None:
            return self._owner.acquire(*args, **kwargs)
        blocking = args[0] if args else kwargs.get("blocking", True)
        if blocking:
            self._tracer._before_acquire(self)
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._tracer._push_held(self)
        return got

    def release(self) -> None:
        if self._owner is not None:
            self._owner.release()
            return
        self._inner.release()
        self._tracer._pop_held(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # -- condition surface ---------------------------------------------------

    def wait(self, timeout: float | None = None) -> bool:
        tracked = self._tracked()
        if not _interpreter_internal_wait():
            self._tracer._note_wait(tracked)
        n = self._tracer._suspend_held(tracked)
        try:
            return self._inner.wait(timeout)
        finally:
            self._tracer._resume_held(tracked, n)

    def wait_for(self, predicate, timeout: float | None = None):
        tracked = self._tracked()
        if not _interpreter_internal_wait():
            self._tracer._note_wait(tracked)
        n = self._tracer._suspend_held(tracked)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._tracer._resume_held(tracked, n)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __getattr__(self, item):
        return getattr(self._inner, item)

    def __repr__(self) -> str:
        return f"<TracedCondition {self.site}>"


class LockTracer:
    """Records the per-process lock-acquisition graph and its hazards.

    Locks are keyed by creation site; edges mean "site A was held while
    site B was blocking-acquired".  ``install()`` monkeypatches
    ``threading.Lock``/``RLock``/``Condition`` (and, by default, wraps
    :class:`repro.net.transport.Channel` send/recv to flag locks held
    across blocking wire operations); ``uninstall()`` restores
    everything and freezes the recording.
    """

    def __init__(self):
        self._guard = _ORIG_LOCK()  # original, never traced
        self._orig_lock = _ORIG_LOCK
        self._orig_rlock = _ORIG_RLOCK
        self._orig_condition = _ORIG_CONDITION
        self._held: dict[int, list] = {}  # thread ident -> wrapper stack
        self._edges: dict[str, set[str]] = {}
        self._inversions: dict[tuple[str, str], LockOrderInversion] = {}
        self._blocking: dict[tuple[str, tuple[str, ...]], BlockingHold] = {}
        self._sites: set[str] = set()
        self._n_acquisitions = 0
        self._installed = False
        self._active = False
        self._channel_originals = None

    # -- wrapper factories ---------------------------------------------------

    def lock(self, site: str | None = None) -> _TracedLock:
        site = site or _caller_site("Lock", 2)
        self._register_site(site)
        return _TracedLock(self, self._orig_lock(), site)

    def rlock(self, site: str | None = None) -> _TracedLock:
        site = site or _caller_site("RLock", 2)
        self._register_site(site)
        return _TracedLock(self, self._orig_rlock(), site)

    def condition(self, lock=None, site: str | None = None) -> _TracedCondition:
        site = site or _caller_site("Condition", 2)
        self._register_site(site)
        return _TracedCondition(self, site, lock)

    def _register_site(self, site: str) -> None:
        with self._guard:
            self._sites.add(site)

    # -- recording -----------------------------------------------------------

    def _before_acquire(self, wrapper) -> None:
        if not self._active:
            return
        ident = threading.get_ident()
        with self._guard:
            self._n_acquisitions += 1
            held = self._held.get(ident, [])
            if any(h is wrapper for h in held):
                return  # reentrant RLock acquisition: no new edge
            target = wrapper.site
            for h in held:
                if h.site == target and h is not wrapper:
                    self._record_inversion(h.site, target, (target,))
                    continue
                if h.site == target:
                    continue
                added = target not in self._edges.get(h.site, ())
                self._edges.setdefault(h.site, set()).add(target)
                if added:
                    cycle = self._find_path(target, h.site)
                    if cycle is not None:
                        self._record_inversion(h.site, target, tuple(cycle))

    def _record_inversion(self, first: str, second: str, cycle) -> None:
        key = tuple(sorted((first, second)))
        if key not in self._inversions:
            self._inversions[key] = LockOrderInversion(
                first=first,
                second=second,
                thread=threading.current_thread().name,
                cycle=tuple(cycle),
            )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """DFS over the edge set; caller holds ``self._guard``."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _push_held(self, wrapper) -> None:
        if not self._active:
            return
        ident = threading.get_ident()
        with self._guard:
            self._held.setdefault(ident, []).append(wrapper)

    def _pop_held(self, wrapper) -> None:
        ident = threading.get_ident()
        with self._guard:
            held = self._held.get(ident)
            if held is None:
                return
            for i in range(len(held) - 1, -1, -1):
                if held[i] is wrapper:
                    del held[i]
                    break

    def _suspend_held(self, wrapper) -> int:
        """Remove every held record of ``wrapper`` (Condition.wait drops
        the real lock); returns how many to restore on wakeup."""
        ident = threading.get_ident()
        with self._guard:
            held = self._held.get(ident, [])
            n = sum(1 for h in held if h is wrapper)
            if n:
                self._held[ident] = [h for h in held if h is not wrapper]
            return n

    def _resume_held(self, wrapper, n: int) -> None:
        if not n:
            return
        ident = threading.get_ident()
        with self._guard:
            self._held.setdefault(ident, []).extend([wrapper] * n)

    def _note_wait(self, wrapper) -> None:
        """Condition.wait blocks: any *other* traced lock still held is
        pinned for the whole wait."""
        self.note_blocking(f"Condition.wait[{wrapper.site}]", exempt=(wrapper,))

    def note_blocking(self, operation: str, exempt=()) -> None:
        """Record ``operation`` (a blocking wire op) if the current
        thread holds traced locks other than ``exempt``."""
        if not self._active:
            return
        ident = threading.get_ident()
        with self._guard:
            held = [
                h for h in self._held.get(ident, ())
                if not any(h is e for e in exempt)
            ]
            if not held:
                return
            sites = tuple(sorted({h.site for h in held}))
            key = (operation, sites)
            if key not in self._blocking:
                self._blocking[key] = BlockingHold(
                    operation=operation,
                    locks=sites,
                    thread=threading.current_thread().name,
                )

    # -- lifecycle -----------------------------------------------------------

    def install(self, patch_channel: bool = True) -> "LockTracer":
        """Start tracing: new locks anywhere in the process are traced."""
        if self._installed:
            raise RuntimeError("LockTracer already installed")
        self._installed = True
        self._active = True
        threading.Lock = lambda: self.lock(_caller_site("Lock", 2))
        threading.RLock = lambda: self.rlock(_caller_site("RLock", 2))
        threading.Condition = lambda lock=None: self.condition(
            lock, _caller_site("Condition", 2)
        )
        if patch_channel:
            self._patch_channel()
        return self

    def _patch_channel(self) -> None:
        from repro.net import transport

        orig_send = transport.Channel.send
        orig_recv = transport.Channel.recv
        tracer = self

        def send(channel, frame, timeout=None):
            if channel._maxsize:  # bounded: can block on backpressure
                tracer.note_blocking(
                    "Channel.send(bounded)", exempt=(channel._cond,)
                )
            return orig_send(channel, frame, timeout=timeout)

        def recv(channel, timeout=None):
            tracer.note_blocking("Channel.recv", exempt=(channel._cond,))
            return orig_recv(channel, timeout=timeout)

        transport.Channel.send = send
        transport.Channel.recv = recv
        self._channel_originals = (orig_send, orig_recv)

    def uninstall(self) -> None:
        """Stop tracing and restore the patched factories.  Wrapper
        locks created during the window keep working, silently."""
        if not self._installed:
            return
        self._installed = False
        self._active = False
        threading.Lock = self._orig_lock
        threading.RLock = self._orig_rlock
        threading.Condition = self._orig_condition
        if self._channel_originals is not None:
            from repro.net import transport

            transport.Channel.send, transport.Channel.recv = (
                self._channel_originals
            )
            self._channel_originals = None

    def report(self) -> LockTraceReport:
        with self._guard:
            return LockTraceReport(
                inversions=list(self._inversions.values()),
                blocking_holds=list(self._blocking.values()),
                n_locks=len(self._sites),
                n_edges=sum(len(v) for v in self._edges.values()),
                n_acquisitions=self._n_acquisitions,
            )


class ThreadLeakGuard:
    """Snapshot live threads, then report non-daemon strays.

    ``leaked()`` gives stragglers a short join grace (clean shutdown
    paths finish in milliseconds) before declaring a leak, so it fails
    on forgotten threads, not on scheduling jitter.
    """

    def __init__(self, join_timeout_s: float = 2.0):
        self.join_timeout_s = join_timeout_s
        self._before: set[threading.Thread] | None = None

    def start(self) -> "ThreadLeakGuard":
        self._before = set(threading.enumerate())
        return self

    def leaked(self) -> list[threading.Thread]:
        if self._before is None:
            raise RuntimeError("ThreadLeakGuard.start() was never called")
        fresh = [
            t
            for t in threading.enumerate()
            if t not in self._before and t.is_alive() and not t.daemon
        ]
        for t in fresh:
            t.join(timeout=self.join_timeout_s)
        return [t for t in fresh if t.is_alive()]


@contextmanager
def checked(patch_channel: bool = True, forbid_leaks: bool = True):
    """Run a scope under full instrumentation; raise on any hazard.

    The integration suite wraps every test in this (as an autouse
    fixture): lock-order inversions, locks pinned across blocking wire
    ops, and leaked non-daemon threads all fail the test that caused
    them.
    """
    tracer = LockTracer()
    guard = ThreadLeakGuard().start()
    tracer.install(patch_channel=patch_channel)
    try:
        yield tracer
    finally:
        tracer.uninstall()
    report = tracer.report()
    problems = [str(v) for v in report.inversions]
    problems += [str(b) for b in report.blocking_holds]
    if forbid_leaks:
        problems += [
            f"leaked non-daemon thread {t.name!r}" for t in guard.leaked()
        ]
    if problems:
        raise AssertionError(
            "concurrency hazards detected:\n  " + "\n  ".join(problems)
        )
