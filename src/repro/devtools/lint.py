"""AST-based lint pass with repo-specific concurrency/protocol rules.

The general-purpose linters this repo could run do not know its
conventions: that every swallowed exception must be counted (the
handshake-reject pattern from the TCP daemon), that polling loops must
sleep on an ``Event``/``Condition`` rather than busy-wait, that the
deterministic fault/codec paths must never read the wall clock or the
global RNG, and that control-message dispatch must stay in sync with
:data:`repro.daemon.protocol.CONTROL_TAGS`.  This module encodes those
conventions as checkable rules:

==========  ============================================================
rule        meaning
==========  ============================================================
``DT101``   bare/broad ``except`` that neither re-raises nor accounts
            for the error (counter increment / recorded reject)
``DT201``   ``time.sleep`` inside a ``while`` loop — a busy-wait poll;
            wait on a ``Condition``/``Event`` instead
``DT301``   ``threading.Thread(...)`` with no ``daemon=`` keyword and no
            ``.join(...)`` in the enclosing scope — a leak-by-default
``DT401``   wall-clock or global-RNG call (``time.time``, ``random.*``,
            ``np.random.*``) inside a deterministic fault/codec path
``DT501``   dispatch on a control ``tag`` literal that is not in the
            protocol registry (typo'd or unregistered opcode) — covers
            ``==``/``!=`` compares and ``in``/``not in`` membership
            tests over tag tuples
``DT502``   an ``if/elif`` chain over ``.tag`` — or over message kinds
            via ``isinstance(msg, FrameMessage)``-style tests — with no
            ``else``: the dispatch silently ignores unknown opcodes
``DT601``   mutable default argument (list/dict/set literal or call)
==========  ============================================================

The CLI also runs the ``DT701``–``DT704`` static lockset race analyzer
from :mod:`repro.devtools.lockset` (guarded-by inference over
``self._*`` fields), the ``DT801``–``DT804`` resource-lifecycle
analyzer from :mod:`repro.devtools.resource_flow` (exception-edge leak,
double-close, use-after-close, close-graph completeness), and the
``DT901``–``DT904`` protocol-conformance analyzer from
:mod:`repro.devtools.protoflow` (wire-schema cross-checking, endpoint
automata vs :mod:`repro.daemon.protocol_spec`), each filtered through
its own committed baseline of grandfathered findings; see those
modules and ``docs/devtools.md`` for the rule catalogues and the
``--baseline`` / ``--rf-baseline`` / ``--pf-baseline`` /
``--no-baseline`` / ``--update-baseline`` workflow.  ``--json`` emits
the combined findings machine-readably; ``--sarif FILE`` additionally
writes them as SARIF 2.1.0 for code-scanning upload;
``--emit-proto-dot FILE`` renders the protocol spec automata to
Graphviz and exits; ``--fail-on-stale`` turns stale baseline entries
into a failing exit.

Escape hatch: append ``# lint: disable=DT201`` (comma-separated ids, or
``all``) to the offending line.  Run with ``repro lint [paths...]`` or
``make lint``; exit status is non-zero when findings remain.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Finding", "RULES", "lint_source", "lint_paths", "main"]

RULES: dict[str, str] = {
    "DT101": "broad except without re-raise or accounting counter",
    "DT201": "time.sleep busy-wait inside a while loop",
    "DT301": "threading.Thread without daemon= or a join in scope",
    "DT401": "wall clock / global RNG in a deterministic path",
    "DT501": "control tag not in the protocol registry",
    "DT502": "tag/kind dispatch chain without an else fallback",
    "DT601": "mutable default argument",
}

#: modules whose behaviour must be a pure function of their inputs and
#: seeds: the fault injector (reproducible WAN traces), the codecs
#: (golden-bytes format stability), the relay tier (deterministic
#: failover/replay traces), and the encode pool (exact crash replay).
#: DT401 applies only here.
DETERMINISTIC_PATH_MARKERS = (
    "repro/compress/",
    "repro/net/faults.py",
    "repro/relay/",
    "repro/serve/encode_pool.py",
)

#: directories never linted (fixture corpus deliberately violates rules)
EXCLUDED_DIR_NAMES = {"lint_fixtures", "__pycache__", ".git", ".pytest_cache"}

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
}
_SEEDED_RNG_CTORS = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
}
_MUTABLE_CTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.deque",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
}
#: call names that count as "accounting for" a swallowed exception
_ACCOUNTING_HINTS = ("count", "note", "record", "reject", "log")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:  # "path:line: DTxxx message" (editor-clickable)
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _control_tags() -> frozenset[str]:
    from repro.daemon.protocol import CONTROL_TAGS

    return CONTROL_TAGS


def _disabled_lines(source: str) -> dict[int, set[str]]:
    """line -> rule ids disabled there, parsed from real comment tokens."""
    disabled: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PRAGMA_RE.search(tok.string)
            if m:
                ids = {part.strip().upper() for part in m.group(1).split(",")}
                disabled.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # syntax trouble surfaces as the ast.parse error instead
    return disabled


class _Analyzer:
    """One file's lint pass: builds parent links, resolves import
    aliases to canonical dotted names, then applies every rule."""

    def __init__(self, tree: ast.Module, path: str,
                 deterministic: bool | None = None):
        self.tree = tree
        self.path = path
        self.findings: list[Finding] = []
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.aliases = self._collect_aliases()
        if deterministic is None:
            deterministic = any(
                marker in Path(path).as_posix()
                for marker in DETERMINISTIC_PATH_MARKERS
            )
        self.deterministic = deterministic

    # -- name resolution -----------------------------------------------------

    def _collect_aliases(self) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        aliases[a.asname] = a.name
                    else:  # `import x.y` binds the root name `x`
                        root = a.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        # conventional alias even without an import statement in scope
        aliases.setdefault("np", "numpy")
        return aliases

    def _dotted(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(path=self.path, line=node.lineno, rule=rule, message=message)
        )

    def _enclosing(self, node: ast.AST, kinds) -> ast.AST | None:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, kinds):
                return cur
            cur = self.parents.get(cur)
        return None

    # -- rules ---------------------------------------------------------------

    def run(self) -> list[Finding]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ExceptHandler):
                self._check_broad_except(node)
            elif isinstance(node, ast.Call):
                self._check_sleep_poll(node)
                self._check_thread_join(node)
                if self.deterministic:
                    self._check_wallclock(node)
            elif isinstance(node, ast.Compare):
                self._check_tag_literal(node)
            elif isinstance(node, ast.If):
                self._check_tag_chain(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_mutable_defaults(node)
        return self.findings

    # DT101 ------------------------------------------------------------------

    def _is_broad_type(self, node: ast.AST | None) -> bool:
        if node is None:
            return True  # bare except
        if isinstance(node, ast.Tuple):
            return any(self._is_broad_type(el) for el in node.elts)
        return self._dotted(node) in ("Exception", "BaseException")

    def _accounts_for_error(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, (ast.Raise, ast.AugAssign)):
                return True
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name and (
                    name == "append"
                    or any(hint in name.lower() for hint in _ACCOUNTING_HINTS)
                ):
                    return True
        return False

    def _check_broad_except(self, node: ast.ExceptHandler) -> None:
        if self._is_broad_type(node.type) and not self._accounts_for_error(node):
            what = "bare except" if node.type is None else "broad except"
            self._report(
                node,
                "DT101",
                f"{what} that neither re-raises nor accounts for the error; "
                "narrow the exception or count it "
                "(handshake-reject pattern: see TcpDaemonServer._handshake)",
            )

    # DT201 ------------------------------------------------------------------

    def _check_sleep_poll(self, node: ast.Call) -> None:
        if self._dotted(node.func) != "time.sleep":
            return
        cur = self.parents.get(node)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            if isinstance(cur, ast.While):
                self._report(
                    node,
                    "DT201",
                    "time.sleep inside a while loop is a busy-wait poll; "
                    "wait on a threading.Event/Condition with a timeout",
                )
                return
            cur = self.parents.get(cur)

    # DT301 ------------------------------------------------------------------

    def _check_thread_join(self, node: ast.Call) -> None:
        if self._dotted(node.func) != "threading.Thread":
            return
        if any(kw.arg == "daemon" for kw in node.keywords):
            return
        scope = self._enclosing(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) or self.tree
        for other in ast.walk(scope):
            if (
                isinstance(other, ast.Call)
                and isinstance(other.func, ast.Attribute)
                and other.func.attr == "join"
            ):
                return
        self._report(
            node,
            "DT301",
            "thread spawned without daemon= and never joined in this "
            "scope; pass daemon=True or join it on shutdown",
        )

    # DT401 ------------------------------------------------------------------

    def _check_wallclock(self, node: ast.Call) -> None:
        name = self._dotted(node.func)
        if name is None:
            return
        offending = (
            name in _WALLCLOCK_CALLS
            or (
                (name.startswith("random.") or name.startswith("numpy.random."))
                and name not in _SEEDED_RNG_CTORS
            )
        )
        if offending:
            self._report(
                node,
                "DT401",
                f"{name} in a deterministic fault/codec path; use a seeded "
                "random.Random/np.random.default_rng or take time as input",
            )

    # DT501 ------------------------------------------------------------------

    @staticmethod
    def _tag_literals(node: ast.Compare) -> list[str]:
        """String literals a ``.tag`` test dispatches on: ``==``/``!=``
        compares plus ``in``/``not in`` membership over literal
        tuples/lists/sets."""
        if len(node.ops) != 1:
            return []
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        if isinstance(op, (ast.Eq, ast.NotEq)):
            for attr, lit in ((left, right), (right, left)):
                if (
                    isinstance(attr, ast.Attribute)
                    and attr.attr == "tag"
                    and isinstance(lit, ast.Constant)
                    and isinstance(lit.value, str)
                ):
                    return [lit.value]
            return []
        if (
            isinstance(op, (ast.In, ast.NotIn))
            and isinstance(left, ast.Attribute)
            and left.attr == "tag"
            and isinstance(right, (ast.Tuple, ast.List, ast.Set))
        ):
            return [
                el.value for el in right.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
        return []

    def _check_tag_literal(self, node: ast.Compare) -> None:
        for tag in self._tag_literals(node):
            if tag not in _control_tags():
                self._report(
                    node,
                    "DT501",
                    f"control tag {tag!r} is not in "
                    "repro.daemon.protocol.CONTROL_TAGS; register it or "
                    "fix the typo",
                )

    # DT502 ------------------------------------------------------------------

    def _test_is_tag_dispatch(self, test: ast.AST) -> bool:
        """Positive dispatch tests only: equality and membership (a
        negated guard filters, it does not dispatch)."""
        return any(
            isinstance(n, ast.Compare)
            and len(n.ops) == 1
            and isinstance(n.ops[0], (ast.Eq, ast.In))
            and self._tag_literals(n)
            for n in ast.walk(test)
        )

    @staticmethod
    def _test_is_kind_dispatch(test: ast.AST) -> bool:
        """An ``isinstance(msg, FrameMessage)``-style test over the
        protocol message kinds (any ``*Message`` class name)."""
        for n in ast.walk(test):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id == "isinstance"
                and len(n.args) == 2
            ):
                kinds = n.args[1]
                elts = kinds.elts if isinstance(kinds, ast.Tuple) \
                    else [kinds]
                for el in elts:
                    base = el.attr if isinstance(el, ast.Attribute) \
                        else getattr(el, "id", "")
                    if base.endswith("Message"):
                        return True
        return False

    def _check_tag_chain(self, node: ast.If) -> None:
        parent = self.parents.get(node)
        if isinstance(parent, ast.If) and parent.orelse == [node]:
            return  # not the head of the chain
        tag_branches = 0
        kind_branches = 0
        cur: ast.AST = node
        while isinstance(cur, ast.If):
            if self._test_is_tag_dispatch(cur.test):
                tag_branches += 1
            elif self._test_is_kind_dispatch(cur.test):
                kind_branches += 1
            if len(cur.orelse) == 1 and isinstance(cur.orelse[0], ast.If):
                cur = cur.orelse[0]
            else:
                break
        if (
            (tag_branches >= 2 or kind_branches >= 2)
            and isinstance(cur, ast.If)
            and not cur.orelse
        ):
            what = "tag" if tag_branches >= 2 else "message-kind"
            self._report(
                node,
                "DT502",
                f"{what} dispatch chain has no else fallback: unknown "
                "opcodes are silently ignored; count or reject them "
                "explicitly",
            )

    # DT601 ------------------------------------------------------------------

    def _check_mutable_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and self._dotted(default.func) in _MUTABLE_CTORS
            )
            if mutable:
                self._report(
                    default,
                    "DT601",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )


def lint_source(source: str, path: str = "<string>",
                deterministic: bool | None = None) -> list[Finding]:
    """Lint one source string; returns findings not pragma-disabled.

    ``deterministic`` forces DT401 on/off; ``None`` derives it from
    ``path`` against :data:`DETERMINISTIC_PATH_MARKERS`.
    """
    tree = ast.parse(source, filename=path)
    disabled = _disabled_lines(source)
    findings = _Analyzer(tree, path, deterministic=deterministic).run()
    kept = []
    for f in findings:
        ids = disabled.get(f.line, set())
        if f.rule in ids or "ALL" in ids:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def _iter_python_files(paths: list[str | Path]):
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not EXCLUDED_DIR_NAMES.intersection(sub.parts):
                    yield sub


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint every ``.py`` under ``paths`` (fixture corpora excluded)."""
    findings: list[Finding] = []
    for path in _iter_python_files(paths):
        findings.extend(lint_source(path.read_text(), str(path)))
    return findings


def _sarif_report(findings, catalogue) -> dict:
    """The combined findings as a SARIF 2.1.0 log for code scanning."""
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": [
                    {"id": rule_id,
                     "shortDescription": {"text": catalogue[rule_id]}}
                    for rule_id in sorted(catalogue)
                ],
            }},
            "results": [
                {
                    "ruleId": f.rule,
                    "level": "warning",
                    "message": {"text": f.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": Path(f.path).as_posix(),
                            },
                            "region": {"startLine": f.line},
                        },
                    }],
                }
                for f in findings
            ],
        }],
    }


def main(argv: list[str] | None = None) -> int:
    # imported lazily: the analyzers import this module for
    # Finding/pragmas
    from repro.devtools import lockset, protoflow, resource_flow

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific concurrency/protocol lint pass, plus "
                    "the DT7xx static lockset race analyzer, the DT8xx "
                    "resource-lifecycle analyzer, and the DT9xx "
                    "protocol-conformance analyzer",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint (default: src tests)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-lockset", action="store_true",
                        help="skip the DT7xx lockset analysis pass")
    parser.add_argument("--no-resourceflow", action="store_true",
                        help="skip the DT8xx resource-lifecycle pass")
    parser.add_argument("--no-protoflow", action="store_true",
                        help="skip the DT9xx protocol-conformance pass")
    parser.add_argument("--baseline", default=lockset.DEFAULT_BASELINE,
                        help="baseline file of grandfathered lockset findings "
                             f"(default: {lockset.DEFAULT_BASELINE})")
    parser.add_argument("--rf-baseline",
                        default=resource_flow.DEFAULT_BASELINE,
                        help="baseline file of grandfathered resource-flow "
                             "findings "
                             f"(default: {resource_flow.DEFAULT_BASELINE})")
    parser.add_argument("--pf-baseline",
                        default=protoflow.DEFAULT_BASELINE,
                        help="baseline file of grandfathered protocol-"
                             "conformance findings "
                             f"(default: {protoflow.DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baselines and report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baselines from current findings "
                             "(kept justifications survive) and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as machine-readable JSON")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write the findings as SARIF 2.1.0 to "
                             "FILE (for code-scanning upload)")
    parser.add_argument("--emit-proto-dot", metavar="FILE",
                        help="write the protocol spec automata as Graphviz "
                             "DOT to FILE and exit")
    parser.add_argument("--fail-on-stale", action="store_true",
                        help="exit non-zero when a baseline contains entries "
                             "that no longer fire")
    args = parser.parse_args(argv)
    if args.list_rules:
        catalogue = dict(RULES)
        catalogue.update(lockset.LOCKSET_RULES)
        catalogue.update(resource_flow.RESOURCE_RULES)
        catalogue.update(protoflow.PROTOFLOW_RULES)
        for rule_id in sorted(catalogue):
            print(f"{rule_id}  {catalogue[rule_id]}")
        return 0
    if args.emit_proto_dot:
        Path(args.emit_proto_dot).write_text(protoflow.render_dot())
        print(f"wrote {args.emit_proto_dot}")
        return 0
    if args.update_baseline and args.no_lockset and args.no_resourceflow \
            and args.no_protoflow:
        parser.error("--update-baseline requires at least one analyzer "
                     "pass (drop --no-lockset / --no-resourceflow / "
                     "--no-protoflow)")

    passes = []  # (label, fresh findings, matched count, stale keys)
    if not args.no_lockset:
        raw = lockset.analyze_paths(args.paths)
        baseline = lockset.load_baseline(args.baseline,
                                         disabled=args.no_baseline)
        if args.update_baseline:
            lockset.Baseline.write(Path(args.baseline), raw,
                                   previous=baseline)
            print(f"wrote {args.baseline}: {len(raw)} grandfathered "
                  f"finding(s)")
        else:
            fresh, matched = baseline.filter(raw)
            passes.append(("lockset", list(fresh), len(matched),
                           baseline.stale_keys(raw)))
    if not args.no_resourceflow:
        raw = resource_flow.analyze_paths(args.paths)
        baseline = resource_flow.load_baseline(args.rf_baseline,
                                               disabled=args.no_baseline)
        if args.update_baseline:
            lockset.Baseline.write(Path(args.rf_baseline), raw,
                                   previous=baseline,
                                   comment=resource_flow.BASELINE_COMMENT)
            print(f"wrote {args.rf_baseline}: {len(raw)} grandfathered "
                  f"finding(s)")
        else:
            fresh, matched = baseline.filter(raw)
            passes.append(("resourceflow", list(fresh), len(matched),
                           baseline.stale_keys(raw)))
    if not args.no_protoflow:
        raw = protoflow.analyze_paths(args.paths)
        baseline = protoflow.load_baseline(args.pf_baseline,
                                           disabled=args.no_baseline)
        if args.update_baseline:
            lockset.Baseline.write(Path(args.pf_baseline), raw,
                                   previous=baseline,
                                   comment=protoflow.BASELINE_COMMENT)
            print(f"wrote {args.pf_baseline}: {len(raw)} grandfathered "
                  f"finding(s)")
        else:
            fresh, matched = baseline.filter(raw)
            passes.append(("protoflow", list(fresh), len(matched),
                           baseline.stale_keys(raw)))
    if args.update_baseline:
        return 0

    findings = lint_paths(args.paths)
    for _, fresh, _, _ in passes:
        findings.extend(fresh)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    baselined = {label: matched for label, _, matched, _ in passes}
    stale = {label: keys for label, _, _, keys in passes if keys}
    n_files = sum(1 for _ in _iter_python_files(args.paths))

    stale_fails = bool(stale) and args.fail_on_stale \
        and not args.no_baseline

    if args.sarif:
        import json as _json

        catalogue = dict(RULES)
        catalogue.update(lockset.LOCKSET_RULES)
        catalogue.update(resource_flow.RESOURCE_RULES)
        catalogue.update(protoflow.PROTOFLOW_RULES)
        Path(args.sarif).write_text(
            _json.dumps(_sarif_report(findings, catalogue), indent=2)
            + "\n")

    if args.json:
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        import json as _json

        print(_json.dumps({
            "findings": [
                {"file": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message}
                for f in findings
            ],
            "counts": counts,
            "files": n_files,
            "baselined": baselined,
            "stale": stale,
        }, indent=2))
        return 1 if findings or stale_fails else 0

    for f in findings:
        print(f)
    if not args.no_baseline:
        for label, keys in stale.items():
            print(f"note: stale {label} baseline entrie(s) no longer "
                  f"fire: " + ", ".join(keys))
    total_baselined = sum(baselined.values())
    suffix = (f" ({total_baselined} analyzer finding(s) baselined)"
              if total_baselined else "")
    if findings:
        print(f"\n{len(findings)} finding(s) in {n_files} file(s){suffix}")
        return 1
    if stale_fails:
        print(f"stale baseline entries present (see notes above); "
              f"regenerate with --update-baseline")
        return 1
    print(f"clean: {n_files} file(s), 0 findings{suffix}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
