"""Repo-specific correctness tooling: static lint + runtime lock tracing.

The serving stack is genuinely concurrent — broker pump threads,
condition-variable channels, retrying connections, daemon accept and
handshake threads — which is exactly the code where Python's dynamism
hides deadlocks, thread leaks, and silently-swallowed errors until they
bite under load.  This package keeps that debt from accumulating:

- :mod:`repro.devtools.lint` — an AST-based checker with repo-specific
  rules (``repro lint`` / ``make lint`` run it over ``src`` and
  ``tests``; a new finding fails CI);
- :mod:`repro.devtools.lockset` — an interprocedural static lockset
  race analyzer (Eraser/RacerD style): infers which lock guards each
  ``self._*`` field and reports inconsistent locksets, bare writes to
  annotated fields, unannotated shared mutable state on threaded
  classes, and lock-scope leaks (rules ``DT701``–``DT704``, run as part
  of ``repro lint`` behind a committed baseline);
- :mod:`repro.devtools.locktrace` — instrumented lock wrappers that
  record the lock-acquisition graph at runtime, detect lock-order
  inversions and locks held across blocking channel operations, plus
  thread-leak guards the integration suite runs under.

See ``docs/devtools.md`` for the rule catalogue and report format.
"""

from repro.devtools.lint import Finding, lint_paths, lint_source
from repro.devtools.lockset import analyze_paths, analyze_source, guarded_by
from repro.devtools.locktrace import LockTracer, ThreadLeakGuard

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "analyze_paths",
    "analyze_source",
    "guarded_by",
    "LockTracer",
    "ThreadLeakGuard",
]
