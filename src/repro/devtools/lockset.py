"""Static lockset race analyzer: guarded-by inference over threaded classes.

:mod:`repro.devtools.locktrace` observes the lock schedules a test run
happens to execute; this module is its static complement, in the style
of Eraser (Savage et al. 1997) and RacerD (Blackshear et al. 2018).  It
parses each module's AST, builds a per-class call graph and field-access
map, and infers for every ``self._*`` field the set of locks held on
each read and write path — tracking ``with self._lock:`` scopes,
``Condition`` monitors, helper methods only ever called while a lock is
held, and methods handed to spawned threads.  A field whose writes are
consistently guarded but that is read bare somewhere is a race on every
schedule that interleaves there — no unlucky timing required, which is
exactly the class of bug runtime tooling only catches by luck.

==========  ============================================================
rule        meaning
==========  ============================================================
``DT701``   inconsistent lockset: a field written under a lock is read
            without that lock held
``DT702``   bare write to a guarded field (guard annotated, or inferred
            from the field's other writes)
``DT703``   unannotated mutable field shared between a spawned thread
            and the class's public surface with no lock at all (includes
            mutable state passed in a ``Thread(args=...)`` tuple)
``DT704``   lock-scope leak: ``.acquire()`` with an early return/raise
            before ``.release()`` — use ``with`` or ``try/finally``
==========  ============================================================

Declaring intent
----------------
Two machine-checked annotations make the locking discipline explicit:

- a trailing ``# guarded-by: _lock`` comment on the line where a field
  is initialised declares its guard; every later read/write must hold
  ``self._lock`` (``# guarded-by: none`` declares a field deliberately
  unguarded — a monotonic flag, a single-writer counter — and exempts
  it);
- the :func:`guarded_by` decorator on a helper method declares the
  caller contract "invoked only while these locks are held"; the body
  is analyzed with them in the lockset (``ViewerSession._apply_delta``
  is the in-tree example).

The line-scoped ``# lint: disable=DT701`` pragma from
:mod:`repro.devtools.lint` silences a single finding.

Baseline
--------
Grandfathered findings live in a committed JSON baseline (default
``lockset_baseline.json`` at the repo root) keyed by
``path:rule:Class.field`` — line-number independent, so unrelated edits
do not churn it.  Every entry carries a written justification.  CI runs
the analyzer with the baseline and fails on any *new* finding; use
``--update-baseline`` to regenerate the file (then justify or fix every
entry) and ``--no-baseline`` to see the unfiltered report.

Run with ``make analyze``, ``python -m repro.devtools.lockset [paths]``,
or as part of ``repro lint`` / ``make lint``.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.lint import EXCLUDED_DIR_NAMES, Finding, _disabled_lines

__all__ = [
    "LOCKSET_RULES",
    "DEFAULT_BASELINE",
    "guarded_by",
    "LocksetFinding",
    "Baseline",
    "analyze_source",
    "analyze_paths",
    "main",
]

LOCKSET_RULES: dict[str, str] = {
    "DT701": "field written under a lock but read without it",
    "DT702": "bare write to a guarded field",
    "DT703": "unannotated shared mutable field on a threaded class",
    "DT704": "lock acquired but not released on every path",
}

#: default baseline filename, resolved against the working directory
#: (the repo root for ``make``/CI invocations)
DEFAULT_BASELINE = "lockset_baseline.json"

#: directory names pruned from tree-wide analysis: test/bench/example
#: code spawns threads deliberately and is exercised under the *runtime*
#: tracer instead.  Explicitly named files are always analyzed.
SKIPPED_TREE_PARTS = frozenset(
    {"tests", "benchmarks", "examples"} | EXCLUDED_DIR_NAMES
)

_LOCK_CTORS = {"threading.Lock", "threading.RLock", "threading.Condition"}
_THREAD_CTOR = "threading.Thread"
#: method calls that mutate the receiver: ``self._items.append(x)`` is a
#: write to ``_items`` for lockset purposes
_MUTATOR_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
    "setdefault", "sort", "update",
}
_MUTABLE_CTOR_NAMES = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
}
_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*|none)")
_INIT_METHODS = {"__init__", "__post_init__", "__new__"}


def guarded_by(*locks: str):
    """Declare that callers invoke this method only while holding the
    named lock attribute(s) (e.g. ``@guarded_by("_lock")``).

    At runtime this is a no-op marker (the names are recorded on
    ``__guarded_by__``); the static analyzer reads the decorator and
    checks the body with those locks in the held set — and checks every
    internal call site actually holds them.
    """
    if not locks or not all(isinstance(name, str) for name in locks):
        raise TypeError("guarded_by takes one or more lock attribute names")

    def mark(fn):
        fn.__guarded_by__ = tuple(locks)
        return fn

    return mark


class LocksetFinding(Finding):
    """A DT7xx finding plus its line-independent baseline key."""

    def __init__(self, path: str, line: int, rule: str, message: str,
                 key: str):
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "line", line)
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "message", message)
        object.__setattr__(self, "key", key)


def _baseline_path(path: str) -> str:
    """Stable path form for baseline keys: relative to the package root
    when possible, so absolute vs relative invocations agree."""
    posix = Path(path).as_posix()
    idx = posix.rfind("src/repro/")
    if idx >= 0:
        return posix[idx + len("src/"):]
    return posix


@dataclass
class Baseline:
    """Grandfathered findings: baseline key -> written justification."""

    entries: dict[str, str]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        return cls(entries=dict(data.get("grandfathered", {})))

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={})

    def filter(
        self, findings: list[LocksetFinding]
    ) -> tuple[list[LocksetFinding], list[str]]:
        """Split findings into (new, baselined-keys-that-matched)."""
        matched = [f.key for f in findings if f.key in self.entries]
        fresh = [f for f in findings if f.key not in self.entries]
        return fresh, matched

    def stale_keys(self, findings: list[LocksetFinding]) -> list[str]:
        """Baseline entries that no longer fire (candidates to drop)."""
        live = {f.key for f in findings}
        return sorted(k for k in self.entries if k not in live)

    @staticmethod
    def write(path: Path, findings: list[LocksetFinding],
              previous: "Baseline | None" = None,
              comment: str | None = None) -> None:
        prev = previous.entries if previous is not None else {}
        grandfathered = {
            f.key: prev.get(f.key, "TODO: justify this entry or fix the bug")
            for f in sorted(findings, key=lambda f: f.key)
        }
        payload = {
            "comment": comment if comment is not None else (
                "Grandfathered DT7xx lockset findings; every entry needs a "
                "written justification. Regenerate with "
                "`repro lint --update-baseline` (see docs/devtools.md)."
            ),
            "grandfathered": grandfathered,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


# -- per-method simulation ----------------------------------------------------


@dataclass
class _Access:
    """One read or write of ``self.<field>``, with the *relative*
    lockset (locks acquired inside the method, on top of its entry
    set)."""

    field: str
    line: int
    write: bool
    locks: frozenset[str]
    method: str


@dataclass
class _MethodInfo:
    name: str
    accesses: list[_Access]
    #: (callee name, relative lockset at the call site, line)
    calls: list[tuple[str, frozenset[str], int]]
    decorated_locks: tuple[str, ...]
    is_public: bool
    is_property: bool


class _MethodSim:
    """Walk one method body tracking the set of class locks held."""

    def __init__(self, cls: "_ClassScan", method_name: str, func):
        self.cls = cls
        self.name = method_name
        self.func = func
        args = func.args.posonlyargs + func.args.args
        self.self_name = args[0].arg if args else "self"
        self.accesses: list[_Access] = []
        self.calls: list[tuple[str, frozenset[str], int]] = []

    def run(self) -> None:
        self._block(self.func.body, frozenset())

    # -- statement walking ----------------------------------------------------

    def _block(self, stmts, held: frozenset[str]) -> None:
        manual: set[str] = set()
        for i, stmt in enumerate(stmts):
            now = held | frozenset(manual)
            lock = self._lock_op(stmt, "acquire")
            if lock is not None:
                self._check_scope_leak(stmts, i, lock, stmt)
                manual.add(lock)
                continue
            lock = self._lock_op(stmt, "release")
            if lock is not None:
                manual.discard(lock)
                continue
            self._stmt(stmt, now)

    def _stmt(self, stmt, held: frozenset[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                lname = self._lock_name(item.context_expr)
                if lname is not None:
                    inner = inner | {lname}
                else:
                    self._exprs(item.context_expr, held)
            self._block(stmt.body, inner)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a closure runs later, under whatever locks its eventual
            # caller holds — analyzed as its own entry point
            self.cls.add_nested(f"{self.name}.<locals>.{stmt.name}", stmt)
        elif isinstance(stmt, ast.ClassDef):
            pass  # nested classes are out of scope
        elif isinstance(stmt, ast.If):
            self._exprs(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exprs(stmt.iter, held)
            self._exprs(stmt.target, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self._exprs(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body, held)
            for handler in stmt.handlers:
                self._block(handler.body, held)
            self._block(stmt.orelse, held)
            self._block(stmt.finalbody, held)
        else:
            self._exprs(stmt, held)

    # -- expression scanning --------------------------------------------------

    def _exprs(self, node, held: frozenset[str]) -> None:
        """Record field accesses / call edges in an expression subtree,
        without descending into deferred bodies (lambdas, nested defs)."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, ast.Attribute) and self._is_self(node.value):
            self._self_attribute(node, held)
        elif isinstance(node, ast.Call):
            self._call(node, held)
        for child in ast.iter_child_nodes(node):
            self._exprs(child, held)

    def _is_self(self, node) -> bool:
        return isinstance(node, ast.Name) and node.id == self.self_name

    def _self_attribute(self, node: ast.Attribute, held) -> None:
        name = node.attr
        if name in self.cls.lock_fields:
            return  # the lock objects themselves are not shared data
        if name in self.cls.method_names:
            parent = self.cls.module.parents.get(node)
            if not (isinstance(parent, ast.Call) and parent.func is node):
                # a bound-method reference escaping as a callback: its
                # body must be safe with no caller-held locks
                self.cls.callbacks.add(name)
            return
        self.accesses.append(
            _Access(field=name, line=node.lineno, write=self._is_write(node),
                    locks=held, method=self.name)
        )

    def _is_write(self, node: ast.Attribute) -> bool:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        parents = self.cls.module.parents
        parent = parents.get(node)
        if isinstance(parent, ast.Subscript) and parent.value is node:
            return isinstance(parent.ctx, (ast.Store, ast.Del))
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is node
            and parent.attr in _MUTATOR_METHODS
        ):
            grand = parents.get(parent)
            return isinstance(grand, ast.Call) and grand.func is parent
        return False

    def _call(self, node: ast.Call, held) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and self._is_self(func.value)
            and func.attr in self.cls.method_names
        ):
            self.calls.append((func.attr, held, node.lineno))
        if self.cls.module.dotted(func) == _THREAD_CTOR:
            self.cls.threaded = True
            self._thread_ctor(node)

    def _thread_ctor(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "target":
                target = kw.value
                if (
                    isinstance(target, ast.Attribute)
                    and self._is_self(target.value)
                    and target.attr in self.cls.method_names
                ):
                    self.cls.thread_targets.add(target.attr)
            elif kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                for elt in kw.value.elts:
                    if (
                        isinstance(elt, ast.Attribute)
                        and self._is_self(elt.value)
                        and elt.attr not in self.cls.method_names
                        and elt.attr not in self.cls.lock_fields
                    ):
                        self.cls.escaped_fields.setdefault(elt.attr, elt.lineno)

    # -- manual acquire/release + DT704 ---------------------------------------

    def _lock_op(self, stmt, op: str) -> str | None:
        """The lock field name when ``stmt`` is ``self.<lock>.<op>()``."""
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return None
        func = stmt.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == op
            and isinstance(func.value, ast.Attribute)
            and self._is_self(func.value.value)
            and func.value.attr in self.cls.lock_fields
        ):
            return func.value.attr
        return None

    def _has_release(self, node, lock: str) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "release"
                and isinstance(sub.func.value, ast.Attribute)
                and self._is_self(sub.func.value.value)
                and sub.func.value.attr == lock
            ):
                return True
        return False

    def _check_scope_leak(self, stmts, i: int, lock: str, acquire_stmt) -> None:
        for stmt in stmts[i + 1:]:
            if isinstance(stmt, ast.Try) and any(
                self._has_release(s, lock) for s in stmt.finalbody
            ):
                return
            if self._has_release(stmt, lock):
                return
            if any(
                isinstance(n, (ast.Return, ast.Raise, ast.Break, ast.Continue))
                for n in ast.walk(stmt)
            ):
                self.cls.report(
                    acquire_stmt.lineno, "DT704", self.name,
                    f"self.{lock}.acquire() can exit this scope without "
                    f"release (early return/raise before the release); use "
                    f"'with self.{lock}:' or release in a finally",
                )
                return
        self.cls.report(
            acquire_stmt.lineno, "DT704", self.name,
            f"self.{lock}.acquire() is never released in this scope; use "
            f"'with self.{lock}:' or release in a finally",
        )

    def _lock_name(self, expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and self._is_self(expr.value)
            and expr.attr in self.cls.lock_fields
        ):
            return expr.attr
        return None


# -- per-class analysis -------------------------------------------------------


class _ClassScan:
    """Lockset analysis of one class: discovery, simulation, inference."""

    def __init__(self, module: "_ModuleScan", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.findings: list[LocksetFinding] = []
        self.lock_fields: set[str] = set()
        self.method_names: set[str] = set()
        self.methods: dict[str, _MethodInfo] = {}
        self.thread_targets: set[str] = set()
        self.callbacks: set[str] = set()
        self.threaded = False
        #: field -> first line it was handed to a Thread(args=...) tuple
        self.escaped_fields: dict[str, int] = {}
        #: field -> declared guard ("none" = deliberately unguarded)
        self.annotations: dict[str, str] = {}
        #: field -> (decl line, initialised from a mutable container)
        self.declared: dict[str, tuple[int, bool]] = {}
        self._funcs: list[tuple[str, ast.AST]] = []
        self._pending_nested: list[tuple[str, ast.AST]] = []

    def report(self, line: int, rule: str, context: str, message: str) -> None:
        key = (f"{_baseline_path(self.module.path)}:{rule}:"
               f"{self.node.name}.{context}")
        self.findings.append(
            LocksetFinding(path=self.module.path, line=line, rule=rule,
                           message=f"{self.node.name}.{context}: {message}",
                           key=key)
        )

    def add_nested(self, name: str, func) -> None:
        self._pending_nested.append((name, func))

    # -- discovery ------------------------------------------------------------

    def _discover(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_static_or_classmethod(stmt):
                    continue
                self.method_names.add(stmt.name)
                self._funcs.append((stmt.name, stmt))
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._declare(stmt.target.id, stmt.lineno,
                              self._mutable_value(stmt.value))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._declare(target.id, stmt.lineno,
                                      self._mutable_value(stmt.value))
        # lock fields + instance attributes: scan every method body for
        # `self.X = threading.Lock()` assignments and `with self.X:` uses
        for _, func in self._funcs:
            args = func.args.posonlyargs + func.args.args
            self_name = args[0].arg if args else "self"
            for sub in ast.walk(func):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name
                        ):
                            if (
                                isinstance(sub.value, ast.Call)
                                and self.module.dotted(sub.value.func)
                                in _LOCK_CTORS
                            ):
                                self.lock_fields.add(target.attr)
                            self._declare(target.attr, sub.lineno,
                                          self._mutable_value(sub.value))
                elif isinstance(sub, (ast.With, ast.AsyncWith)):
                    for item in sub.items:
                        ctx = item.context_expr
                        if (
                            isinstance(ctx, ast.Attribute)
                            and isinstance(ctx.value, ast.Name)
                            and ctx.value.id == self_name
                        ):
                            # anything used as `with self.X:` acts as a
                            # lock even if its constructor is opaque
                            self.lock_fields.add(ctx.attr)

    @staticmethod
    def _is_static_or_classmethod(func) -> bool:
        for deco in func.decorator_list:
            name = deco.id if isinstance(deco, ast.Name) else getattr(
                deco, "attr", None)
            if name in ("staticmethod", "classmethod"):
                return True
        return False

    def _declare(self, name: str, line: int, mutable: bool) -> None:
        guard = self.module.guard_comments.get(line)
        if guard is not None:
            self.annotations.setdefault(name, guard)
        prev = self.declared.get(name)
        if prev is None:
            self.declared[name] = (line, mutable)
        elif mutable and not prev[1]:
            self.declared[name] = (prev[0], True)

    def _mutable_value(self, value) -> bool:
        if value is None:
            return False
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            dotted = self.module.dotted(value.func)
            if dotted and dotted.split(".")[-1] in _MUTABLE_CTOR_NAMES:
                return True
            # dataclasses.field(default_factory=list)
            if dotted and dotted.split(".")[-1] == "field":
                for kw in value.keywords:
                    if kw.arg == "default_factory":
                        factory = self.module.dotted(kw.value)
                        if factory and factory.split(".")[-1] in \
                                _MUTABLE_CTOR_NAMES:
                            return True
        return False

    @staticmethod
    def _decorated_locks(func) -> tuple[str, ...]:
        for deco in func.decorator_list:
            if isinstance(deco, ast.Call):
                name = deco.func.id if isinstance(deco.func, ast.Name) \
                    else getattr(deco.func, "attr", None)
                if name == "guarded_by":
                    return tuple(
                        arg.value for arg in deco.args
                        if isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                    )
        return ()

    @staticmethod
    def _is_property(func) -> bool:
        for deco in func.decorator_list:
            if isinstance(deco, ast.Name) and deco.id == "property":
                return True
            if isinstance(deco, ast.Attribute) and deco.attr in (
                "setter", "getter", "deleter"
            ):
                return True
        return False

    # -- interprocedural entry locksets ---------------------------------------

    def _simulate(self) -> None:
        queue = list(self._funcs)
        while queue:
            name, func = queue.pop(0)
            sim = _MethodSim(self, name, func)
            sim.run()
            is_dunder = name.startswith("__") and name.endswith("__")
            self.methods[name] = _MethodInfo(
                name=name,
                accesses=sim.accesses,
                calls=sim.calls,
                decorated_locks=self._decorated_locks(func),
                is_public=not name.startswith("_") or is_dunder,
                is_property=self._is_property(func),
            )
            if self._pending_nested:
                for nested_name, nested in self._pending_nested:
                    self.method_names.add(nested_name)
                    queue.append((nested_name, nested))
                self._pending_nested = []

    def _entry_locksets(self) -> dict[str, frozenset[str]]:
        """Fixpoint over the internal call graph: a private helper's
        entry lockset is the intersection of what its callers hold."""
        entry: dict[str, frozenset[str] | None] = {}
        fixed: set[str] = set()
        for name, info in self.methods.items():
            if info.decorated_locks:
                entry[name] = frozenset(info.decorated_locks)
                fixed.add(name)
            elif (
                info.is_public
                or info.is_property
                or name in self.thread_targets
                or name in self.callbacks
                or "<locals>" in name
            ):
                entry[name] = frozenset()
                fixed.add(name)
            else:
                entry[name] = None
        # a private method nothing in the class calls is an external
        # entry point (another class or module drives it): entry = {}
        called = {
            callee for info in self.methods.values()
            for callee, _held, _line in info.calls
        }
        for name in self.methods:
            if entry[name] is None and name not in called:
                entry[name] = frozenset()
        changed = True
        while changed:
            changed = False
            for name, info in self.methods.items():
                if entry[name] is None or name in _INIT_METHODS:
                    continue  # init-time calls don't weaken a helper
                base = entry[name]
                for callee, rel_held, _ in info.calls:
                    if callee in fixed or callee not in entry:
                        continue
                    effective = base | rel_held
                    current = entry[callee]
                    new = effective if current is None \
                        else current & effective
                    if new != current:
                        entry[callee] = new
                        changed = True
        return {name: (held if held is not None else frozenset())
                for name, held in entry.items()}

    def _reachable(self, roots: set[str]) -> set[str]:
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            info = self.methods.get(name)
            if info is None:
                continue
            for callee, _held, _line in info.calls:
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    # -- rules ----------------------------------------------------------------

    def run(self) -> list[LocksetFinding]:
        self._discover()
        self._simulate()
        entry = self._entry_locksets()

        init_reach = self._reachable(
            {m for m in self.methods if m in _INIT_METHODS}
        )
        noninit_roots = {
            m for m, info in self.methods.items()
            if m not in _INIT_METHODS and (
                info.is_public or info.is_property or info.decorated_locks
                or m in self.thread_targets or m in self.callbacks
                or "<locals>" in m
            )
        }
        noninit_reach = self._reachable(noninit_roots)
        exempt = set(_INIT_METHODS) | (init_reach - noninit_reach)

        thread_ctx = self._reachable(self.thread_targets | self.callbacks)
        external_ctx = self._reachable(
            {m for m, info in self.methods.items()
             if m not in _INIT_METHODS
             and (info.is_public or info.is_property)}
        )

        # the decorator is a caller contract: every internal call site of
        # a @guarded_by method must actually hold the declared locks
        for name, info in self.methods.items():
            if name in exempt:
                continue
            for callee, rel_held, line in info.calls:
                callee_info = self.methods.get(callee)
                if callee_info is None or not callee_info.decorated_locks:
                    continue
                missing = sorted(
                    set(callee_info.decorated_locks) - (entry[name] | rel_held)
                )
                if missing:
                    self.report(
                        line, "DT701", callee,
                        f"called from {name}() without self.{missing[0]} "
                        f"(declared @guarded_by({missing[0]!r}))",
                    )

        fields: dict[str, list[_Access]] = {}
        for name, info in self.methods.items():
            held0 = entry[name]
            for acc in info.accesses:
                if acc.method in exempt:
                    continue
                fields.setdefault(acc.field, []).append(
                    _Access(field=acc.field, line=acc.line, write=acc.write,
                            locks=held0 | acc.locks, method=acc.method)
                )
        for field_name, accesses in sorted(fields.items()):
            self._check_field(field_name, accesses, thread_ctx, external_ctx)
        self.findings.sort(key=lambda f: (f.line, f.rule))
        return self.findings

    def _check_field(self, name, accesses, thread_ctx, external_ctx) -> None:
        annotation = self.annotations.get(name)
        if annotation == "none":
            return
        writes = [a for a in accesses if a.write]
        reads = [a for a in accesses if not a.write]
        seen: set[tuple[str, int]] = set()

        def once(rule: str, line: int, message: str) -> None:
            if (rule, line) not in seen:
                seen.add((rule, line))
                self.report(line, rule, name, message)

        if annotation is not None:
            for a in writes:
                if annotation not in a.locks:
                    once("DT702", a.line,
                         f"written in {a.method}() without self."
                         f"{annotation} (declared '# guarded-by: "
                         f"{annotation}')")
            for a in reads:
                if annotation not in a.locks:
                    once("DT701", a.line,
                         f"read in {a.method}() without self.{annotation} "
                         f"(declared '# guarded-by: {annotation}')")
            return

        locked_writes = [a for a in writes if a.locks]
        if locked_writes:
            for a in writes:
                if not a.locks:
                    guards = sorted(set().union(
                        *(w.locks for w in locked_writes)))
                    once("DT702", a.line,
                         f"written in {a.method}() with no lock held, but "
                         f"other writes hold self.{'/self.'.join(guards)}")
            guard = frozenset.intersection(
                *(a.locks for a in locked_writes))
            if guard:
                label = sorted(guard)[0]
                for a in reads:
                    if not guard & a.locks:
                        once("DT701", a.line,
                             f"read in {a.method}() without self.{label}, "
                             f"which every write holds; take the lock or "
                             f"annotate the field")
            return

        # no locking evidence at all: shared-with-a-thread escape check
        if not self.threaded:
            return
        _, mutable = self.declared.get(name, (0, False))
        if not mutable:
            return
        touched_by_thread = any(a.method in thread_ctx for a in accesses)
        touched_outside = any(
            a.method in external_ctx and a.method not in
            (thread_ctx - external_ctx) for a in accesses
        )
        escaped = name in self.escaped_fields
        if (touched_by_thread and touched_outside) or escaped:
            line = (self.escaped_fields.get(name)
                    or min(a.line for a in accesses))
            how = ("passed to a spawned thread via Thread(args=...)"
                   if escaped else
                   "shared between a spawned thread and the public surface")
            once("DT703", line,
                 f"mutable field {how} with no lock ever held; guard it "
                 f"and annotate with '# guarded-by: <lock>' (or declare "
                 f"'# guarded-by: none' with a comment saying why)")


# -- per-module driver --------------------------------------------------------


class _ModuleScan:
    """One file: import aliases, guard comments, parent links, classes."""

    def __init__(self, tree: ast.Module, path: str, source: str):
        self.tree = tree
        self.path = path
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.aliases = self._collect_aliases()
        self.guard_comments = self._collect_guard_comments(source)

    def _collect_aliases(self) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        aliases[a.asname] = a.name
                    else:
                        root = a.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        return aliases

    @staticmethod
    def _collect_guard_comments(source: str) -> dict[int, str]:
        guards: dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type != tokenize.COMMENT:
                    continue
                m = _GUARD_RE.search(tok.string)
                if m:
                    guards[tok.start[0]] = m.group(1)
        except tokenize.TokenError:
            pass  # surfaces as the ast.parse error instead
        return guards

    def dotted(self, node) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def run(self) -> list[LocksetFinding]:
        findings: list[LocksetFinding] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_ClassScan(self, node).run())
        return findings


# -- public API ---------------------------------------------------------------


def analyze_source(source: str, path: str = "<string>") -> list[LocksetFinding]:
    """Analyze one source string; returns findings not pragma-disabled."""
    tree = ast.parse(source, filename=path)
    findings = _ModuleScan(tree, path, source).run()
    disabled = _disabled_lines(source)
    kept = [
        f for f in findings
        if f.rule not in disabled.get(f.line, set())
        and "ALL" not in disabled.get(f.line, set())
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def _iter_files(paths):
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not SKIPPED_TREE_PARTS.intersection(sub.parts):
                    yield sub


def analyze_paths(paths) -> list[LocksetFinding]:
    """Analyze every ``.py`` under ``paths``.

    Directories named in :data:`SKIPPED_TREE_PARTS` (tests, benchmarks,
    examples, fixture corpora) are pruned from tree traversal;
    explicitly named files are always analyzed.
    """
    findings: list[LocksetFinding] = []
    for path in _iter_files(paths):
        findings.extend(analyze_source(path.read_text(), str(path)))
    return findings


def load_baseline(path: str | Path | None,
                  disabled: bool = False) -> Baseline:
    """The baseline to apply: empty when disabled or the file is absent."""
    if disabled:
        return Baseline.empty()
    p = Path(path if path is not None else DEFAULT_BASELINE)
    if p.is_file():
        return Baseline.load(p)
    return Baseline.empty()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="static lockset race analyzer (DT701-DT704)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline and report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "(justifications of surviving entries are kept)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(LOCKSET_RULES):
            print(f"{rule_id}  {LOCKSET_RULES[rule_id]}")
        return 0
    findings = analyze_paths(args.paths)
    baseline = load_baseline(args.baseline, disabled=args.no_baseline)
    if args.update_baseline:
        Baseline.write(Path(args.baseline), findings, previous=baseline)
        print(f"wrote {args.baseline}: {len(findings)} grandfathered "
              f"finding(s)")
        return 0
    fresh, matched = baseline.filter(findings)
    for f in fresh:
        print(f)
    n_files = sum(1 for _ in _iter_files(args.paths))
    stale = baseline.stale_keys(findings)
    suffix = f", {len(matched)} baselined" if matched else ""
    if stale and not args.no_baseline:
        print(f"note: {len(stale)} stale baseline entrie(s) no longer fire: "
              + ", ".join(stale))
    if fresh:
        print(f"\n{len(fresh)} new finding(s) in {n_files} file(s){suffix}")
        return 1
    print(f"lockset clean: {n_files} file(s), 0 new findings{suffix}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
