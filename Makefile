# Convenience targets for the repro library.

PY ?= python3

.PHONY: install test bench bench-fast reproduce examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-fast:
	REPRO_BENCH_FAST=1 $(PY) -m pytest benchmarks/ --benchmark-only

reproduce:
	$(PY) examples/reproduce_paper.py

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/partition_tuning.py
	$(PY) examples/compression_explorer.py
	$(PY) examples/remote_session_nasa.py
	$(PY) examples/ibr_explorer.py
	$(PY) examples/tcp_deployment.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
