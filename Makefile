# Convenience targets for the repro library.

PY ?= python3

.PHONY: help install test lint analyze bench bench-fast bench-smoke serve-smoke serve-shard-smoke faults-smoke relay-smoke reproduce examples clean

help:
	@echo "install      pip install -e ."
	@echo "test         full test suite"
	@echo "lint         concurrency/protocol lint + DT7xx lockset + DT8xx resource-flow + DT9xx protocol conformance + lint-marked tests"
	@echo "analyze      DT7xx lockset + DT8xx resource-flow + DT9xx protoflow analyzers alone (src, against the baselines)"
	@echo "bench        full benchmark suite"
	@echo "bench-smoke  fast perf guardrails (decode, serve, shards, faults, relay)"
	@echo "reproduce    regenerate the paper-reproduction report"
	@echo "examples     run every example script"
	@echo "clean        remove build/test artifacts"

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

# Repo-specific static checks (rule catalogue in docs/devtools.md) plus
# the tests that pin the rules and the analyzers themselves.
# `repro lint` runs the DT1xx-DT6xx rules, the DT7xx lockset race
# analyzer (filtered through lockset_baseline.json), the DT8xx
# resource-lifecycle analyzer (filtered through
# resourceflow_baseline.json), AND the DT9xx protocol-conformance
# analyzer (filtered through protoflow_baseline.json) in one pass.
lint:
	PYTHONPATH=src $(PY) -m repro lint src tests
	PYTHONPATH=src $(PY) -m pytest tests/ -m lint

# The deep analyzers alone — useful while triaging a finding or
# refreshing a baseline (`make analyze` then `repro lint --update-baseline`).
analyze:
	PYTHONPATH=src $(PY) -c "import sys; from repro.devtools.lockset import main; sys.exit(main(['src']))"
	PYTHONPATH=src $(PY) -c "import sys; from repro.devtools.resource_flow import main; sys.exit(main(['src']))"
	PYTHONPATH=src $(PY) -c "import sys; from repro.devtools.protoflow import main; sys.exit(main(['src']))"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-fast:
	REPRO_BENCH_FAST=1 $(PY) -m pytest benchmarks/ --benchmark-only

# Quick decode-throughput guardrail (seconds, not minutes): runs only the
# perf_smoke-marked tests, which assert order-of-magnitude floors.
# PYTHONPATH=src so it works from a fresh checkout without `make install`.
bench-smoke: serve-smoke serve-shard-smoke faults-smoke relay-smoke
	PYTHONPATH=src $(PY) -m pytest tests/ -m perf_smoke

# Serving-layer guardrail: the fan-out benchmark at tiny scale
# (4 viewers, 16 frames) — catches broker/cache regressions in seconds.
serve-smoke:
	PYTHONPATH=src $(PY) -m pytest tests/unit/test_serve_smoke.py -m perf_smoke

# Scale-out guardrail: 2 shards x 2 encode workers at 4 and 64 viewers —
# warm fps must not collapse as the viewer count grows 16x.
serve-shard-smoke:
	PYTHONPATH=src $(PY) -m pytest tests/unit/test_shard_smoke.py -m perf_smoke

# Resilience guardrail: one lossy/jittery WAN cell — catches retry,
# credit-leak, and reconnect-resume regressions in seconds.
faults-smoke:
	PYTHONPATH=src $(PY) -m pytest tests/unit/test_faults_smoke.py -m perf_smoke

# Relay-tier guardrail: one replay-heavy two-relay topology — catches
# offload, store, prefetch, and ownership-ring regressions in seconds.
relay-smoke:
	PYTHONPATH=src $(PY) -m pytest tests/unit/test_relay_smoke.py -m perf_smoke

reproduce:
	$(PY) examples/reproduce_paper.py

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/partition_tuning.py
	$(PY) examples/compression_explorer.py
	$(PY) examples/remote_session_nasa.py
	$(PY) examples/ibr_explorer.py
	$(PY) examples/tcp_deployment.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
