"""Figure 6 — overall execution time vs number of partitions L.

Paper setup: first 128 time steps of the turbulent jet, 256x256 output
images, RWCP PC cluster, P in {16, 32, 64}, L swept over powers of two
(log-scaled x axis).  Claim: "An optimal partition does exist and it is
four for all three processor sizes 16, 32, and 64."
"""

from _util import emit, fmt_row

from repro.core import PipelineConfig, simulate_pipeline
from repro.core.partitioning import candidate_partitions
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE

PROCS = (16, 32, 64)
N_STEPS = 128


def sweep_overall_times() -> dict[int, dict[int, float]]:
    out: dict[int, dict[int, float]] = {}
    for procs in PROCS:
        out[procs] = {}
        for l_groups in candidate_partitions(procs):
            result = simulate_pipeline(
                PipelineConfig(
                    n_procs=procs,
                    n_groups=l_groups,
                    n_steps=N_STEPS,
                    profile=JET_PROFILE,
                    machine=RWCP_CLUSTER,
                    image_size=(256, 256),
                    transport="store",
                )
            )
            out[procs][l_groups] = result.overall_time
    return out


def test_fig6_overall_vs_partitions(benchmark):
    sweep = benchmark.pedantic(sweep_overall_times, rounds=1, iterations=1)

    all_ls = sorted({l for row in sweep.values() for l in row})
    lines = [
        "Figure 6: overall execution time (s) vs number of partitions L",
        "(turbulent jet, 128 steps, 256x256 images, RWCP PC cluster)",
        "",
        fmt_row("P \\ L", all_ls),
    ]
    for procs in PROCS:
        lines.append(
            fmt_row(
                f"P={procs}",
                [sweep[procs].get(l, float("nan")) for l in all_ls],
                prec=1,
            )
        )
    best = {p: min(sweep[p], key=sweep[p].get) for p in PROCS}
    lines.append("")
    lines.append(f"optimal L per machine size: {best}")
    lines.append("paper: optimum L = 4 for P in {16, 32, 64}")
    emit("fig6_partitions", lines)

    # Shape assertions (the paper's claim)
    for procs in PROCS:
        assert best[procs] == 4, sweep[procs]
        assert sweep[procs][4] < sweep[procs][1]
        assert sweep[procs][4] < sweep[procs][procs]
