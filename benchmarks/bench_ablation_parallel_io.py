"""Ablation (§7.1) — parallel I/O in the rendering pipeline.

"Parallel I/O, if available, can be incorporated into the pipeline
rendering process quite straightforwardly, and would improve the overall
system performance."  We sweep the partition count with 1, 2, 4 and 8
I/O servers on the P=64 RWCP configuration of Figure 6 and watch both
the overall time and the optimal L shift as storage stops being the
right-side bottleneck.
"""

from _util import emit, fmt_row

from repro.core import PipelineConfig, simulate_pipeline
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE

LS = (1, 2, 4, 8, 16, 32)
SERVERS = (1, 2, 4, 8)


def sweep():
    out = {}
    for servers in SERVERS:
        out[servers] = {}
        for l_groups in LS:
            out[servers][l_groups] = simulate_pipeline(
                PipelineConfig(
                    n_procs=64,
                    n_groups=l_groups,
                    n_steps=128,
                    profile=JET_PROFILE,
                    machine=RWCP_CLUSTER,
                    image_size=(256, 256),
                    io_servers=servers,
                )
            ).overall_time
    return out


def test_ablation_parallel_io(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: parallel I/O (P=64, 128 jet steps, 256x256), overall s",
        "",
        fmt_row("servers \\ L", list(LS)),
    ]
    for servers in SERVERS:
        lines.append(
            fmt_row(f"{servers} I/O server(s)", [data[servers][l] for l in LS], prec=1)
        )
    best = {s: min(data[s], key=data[s].get) for s in SERVERS}
    lines += ["", f"optimal L per server count: {best}"]
    emit("ablation_parallel_io", lines)

    # parallel I/O never hurts and helps where storage was the bottleneck
    for l_groups in LS:
        assert data[8][l_groups] <= data[1][l_groups] + 1e-9
    assert data[8][8] < data[1][8]
    # with storage contention gone, the optimum moves to more groups
    assert best[8] >= best[1]
    assert best[8] > 4
