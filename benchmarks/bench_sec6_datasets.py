"""§6 dataset contrasts — vortex and mixing behaviour at 512².

Vortex: "For images of 512² pixels or larger, the image transport/display
time (0.325 seconds) is in fact longer than the rendering time (0.178
seconds)."  Mixing: "while a 512x512 image would take about 4 seconds to
generate, the image transport time is only one tenth of the rendering
time."  Also: real vortex frames compress worse than jet frames.
"""

from _util import emit, fmt_row

from repro.compress import get_codec
from repro.core import PartitionPlan, PerformanceModel
from repro.sim.cluster import O2_CLIENT, RWCP_CLUSTER, RWCP_TO_UCD
from repro.sim.costs import JET_PROFILE, MIXING_PROFILE, VORTEX_PROFILE

PLAN = PartitionPlan(64, 4)
PIXELS = 512 * 512


def stage_times():
    out = {}
    for name, profile in (
        ("jet", JET_PROFILE),
        ("vortex", VORTEX_PROFILE),
        ("mixing", MIXING_PROFILE),
    ):
        model = PerformanceModel(
            machine=RWCP_CLUSTER,
            profile=profile,
            pixels=PIXELS,
            transport="daemon",
            route=RWCP_TO_UCD,
            client=O2_CLIENT,
        )
        render_per_frame = model.render_s(PLAN.group_size) / PLAN.n_groups
        transport = model.output_shared_s() + model.client_s()
        out[name] = (render_per_frame, transport)
    return out


def test_sec6_dataset_contrasts(benchmark, jet_frames, vortex_frame):
    times = benchmark.pedantic(stage_times, rounds=1, iterations=1)

    codec = get_codec("jpeg+lzo")
    jet_256 = jet_frames[256]
    jet_bytes = len(codec.encode_image(jet_256))
    vortex_bytes = len(codec.encode_image(vortex_frame))

    lines = [
        "Section 6 dataset contrasts at 512x512 (RWCP -> UCD, P=64, L=4)",
        "",
        fmt_row("dataset", ["render/frame", "transport"]),
    ]
    for name in ("jet", "vortex", "mixing"):
        lines.append(fmt_row(name, list(times[name]), prec=3))
    lines += [
        "",
        f"paper vortex: render 0.178 s, transport/display 0.325 s",
        f"paper mixing: render ~4 s/volume, transport ~1/10 of render",
        "",
        f"real 256x256 JPEG+LZO payloads: jet {jet_bytes} B, "
        f"vortex {vortex_bytes} B "
        "(vortex frames 'cannot be compressed as well')",
    ]
    emit("sec6_datasets", lines)

    v_render, v_transport = times["vortex"]
    assert v_transport > v_render  # transport-bound
    m_render_frame, m_transport = times["mixing"]
    m_render_volume = m_render_frame * PLAN.n_groups
    assert m_transport < m_render_volume / 4  # render-bound
    assert 2.0 < m_render_volume < 8.0  # "about 4 seconds"
    assert vortex_bytes > jet_bytes
