"""Codec throughput — the speed claims behind the §4.2 codec choices.

"LZO … offers fast compression and very fast decompression"; "BZIP has
very good lossless compression … better than gzip" (slower but tighter);
JPEG trades quality for size.  This bench measures encode/decode
throughput of every codec on a real 256² jet frame with pytest-benchmark
statistics (these are also the numbers a user needs to budget their own
display pipeline).

Run as a script for machine-readable results tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_codec_throughput.py --json

writes/updates ``BENCH_codec.json`` at the repo root, merging the run
under ``--label`` (default ``"current"``) so a pre-change ``baseline``
entry and the post-change numbers live side by side, along with the
decode speedup of every method against the baseline.
"""

import pytest

from repro.compress import get_codec

METHODS = ("rle", "lzo", "deflate", "bzip", "jpeg", "jpeg+lzo")


@pytest.mark.parametrize("method", METHODS)
def test_encode_throughput(benchmark, jet_frames, method):
    frame = jet_frames[256]
    codec = get_codec(method)
    payload = benchmark(codec.encode_image, frame)
    assert len(payload) > 0
    benchmark.extra_info["ratio"] = frame.nbytes / len(payload)


@pytest.mark.parametrize("method", METHODS)
def test_decode_throughput(benchmark, jet_frames, method):
    frame = jet_frames[256]
    codec = get_codec(method)
    payload = codec.encode_image(frame)
    out = benchmark(codec.decode_image, payload)
    assert out.shape == frame.shape


def test_lzo_decodes_faster_than_bzip(benchmark, jet_frames):
    """The paper's stated reason for offering LZO at all."""
    import time

    frame = jet_frames[256]
    lzo = get_codec("lzo")
    bzip = get_codec("bzip")
    lzo_payload = lzo.encode_image(frame)
    bzip_payload = bzip.encode_image(frame)

    def clock(fn, *args, repeat=3):
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    def compare():
        return (
            clock(lzo.decode_image, lzo_payload),
            clock(bzip.decode_image, bzip_payload),
        )

    t_lzo, t_bzip = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t_lzo < t_bzip
    # and BZIP compresses tighter, the other side of the trade-off
    assert len(bzip_payload) < len(lzo_payload)


# -- machine-readable mode (perf trajectory across PRs) -----------------------

JSON_METHODS = ("rle", "lzo", "deflate", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip")


def _bench_frame(size: int = 256):
    """Render one real jet frame (same content as the ``jet_frames`` fixture)."""
    from repro.data import turbulent_jet
    from repro.render import Camera, TransferFunction, render_volume, to_display_rgb

    vol = turbulent_jet().volume(40)
    cam = Camera(image_size=(size, size))
    return to_display_rgb(render_volume(vol, TransferFunction.jet(), cam))


def _clock(fn, *args, repeat: int = 5, warmup: int = 2) -> float:
    """Best-of-``repeat`` wall time, after ``warmup`` untimed iterations.

    The warmup runs populate every lazily-built cache on the path
    (context scratch, memoized Huffman LUTs, numpy's internal buffers)
    so the measured window sees only steady-state cost — mixing the
    first cold call into the timed set skews the JSON numbers the PR
    trajectory is judged on.
    """
    import time

    for _ in range(warmup):
        fn(*args)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_throughput(size: int = 256, repeat: int = 5) -> dict:
    """Encode/decode MB/s per codec on a real rendered frame."""
    frame = _bench_frame(size)
    mb = frame.nbytes / 1e6
    results = {}
    for method in JSON_METHODS:
        codec = get_codec(method)
        payload = codec.encode_image(frame)
        enc_s = _clock(codec.encode_image, frame, repeat=repeat)
        dec_s = _clock(codec.decode_image, payload, repeat=repeat)
        results[method] = {
            "encode_MBps": round(mb / enc_s, 3),
            "decode_MBps": round(mb / dec_s, 3),
            "ratio": round(frame.nbytes / len(payload), 3),
        }
    # The JPEG+Huffman path in both stream formats, when the codec knows
    # how to emit the legacy (v1, non-interleaved) stream: the in-run
    # apples-to-apples comparison behind the fast-decode claim.
    try:
        legacy = get_codec("jpeg", stream_version=1)
    except TypeError:
        legacy = None
    if legacy is not None:
        payload = legacy.encode_image(frame)
        results["jpeg_v1_stream"] = {
            "encode_MBps": round(mb / _clock(legacy.encode_image, frame, repeat=repeat), 3),
            "decode_MBps": round(mb / _clock(legacy.decode_image, payload, repeat=repeat), 3),
            "ratio": round(frame.nbytes / len(payload), 3),
        }
    return {"image_size": size, "frame_MB": round(mb, 3), "methods": results}


def write_json(path, label: str, size: int, repeat: int) -> dict:
    import json
    from pathlib import Path

    path = Path(path)
    doc = {}
    if path.exists():
        doc = json.loads(path.read_text())
    doc[label] = measure_throughput(size=size, repeat=repeat)
    base = doc.get("baseline")
    if base is not None and label != "baseline":
        for direction in ("decode", "encode"):
            speedups = {}
            for method, row in doc[label]["methods"].items():
                ref = base["methods"].get(method)
                if ref and ref.get(f"{direction}_MBps"):
                    speedups[method] = round(
                        row[f"{direction}_MBps"] / ref[f"{direction}_MBps"], 2
                    )
            doc[f"{label}_{direction}_speedup_vs_baseline"] = speedups
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


# Encode floors on the 256² jet frame: the vectorized-encode multipliers
# over the pre-vectorization baseline (jpeg 3x of 45.141, lzo 2x of 9.372,
# bzip 2x of 2.478 MB/s).  ``--check-floors`` gates on these and prints a
# markdown delta table for the CI job summary.
ENCODE_FLOORS_MBPS = {"jpeg": 135.4, "lzo": 18.744, "bzip": 4.956}


def check_floors(size: int = 256, repeat: int = 5) -> bool:
    """Print measured encode throughput vs floor; True if all floors hold.

    Only the floored codecs are measured (each best-of-``repeat`` after
    warmup, back to back) so the jpeg number is not taken in the cache
    shadow of the full seven-method sweep.
    """
    frame = _bench_frame(size)
    mb = frame.nbytes / 1e6
    ok = True
    print("| codec | encode MB/s | floor | delta |")
    print("|---|---|---|---|")
    for method, floor in ENCODE_FLOORS_MBPS.items():
        codec = get_codec(method)
        mbps = mb / _clock(codec.encode_image, frame, repeat=repeat)
        delta = mbps - floor
        ok &= mbps >= floor
        print(f"| {method} | {mbps:.2f} | {floor:.2f} | {delta:+.2f} |")
    return ok


def main(argv=None) -> None:
    import argparse
    from pathlib import Path

    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true", help="write BENCH_codec.json")
    ap.add_argument(
        "--check-floors",
        action="store_true",
        help="gate on the encode floors; prints a markdown delta table",
    )
    ap.add_argument("--out", default=str(repo_root / "BENCH_codec.json"))
    ap.add_argument("--label", default="current")
    ap.add_argument("--size", type=int, default=256)
    ap.add_argument("--repeat", type=int, default=5)
    args = ap.parse_args(argv)
    if args.check_floors:
        raise SystemExit(0 if check_floors(args.size, args.repeat) else 1)
    if not args.json:
        ap.error("nothing to do: pass --json")
    doc = write_json(args.out, args.label, args.size, args.repeat)
    for method, row in sorted(doc[args.label]["methods"].items()):
        print(
            f"{method:<16} encode {row['encode_MBps']:>9.2f} MB/s   "
            f"decode {row['decode_MBps']:>9.2f} MB/s   ratio {row['ratio']:.2f}"
        )


if __name__ == "__main__":
    main()
