"""Codec throughput — the speed claims behind the §4.2 codec choices.

"LZO … offers fast compression and very fast decompression"; "BZIP has
very good lossless compression … better than gzip" (slower but tighter);
JPEG trades quality for size.  This bench measures encode/decode
throughput of every codec on a real 256² jet frame with pytest-benchmark
statistics (these are also the numbers a user needs to budget their own
display pipeline).
"""

import pytest

from repro.compress import get_codec

METHODS = ("rle", "lzo", "deflate", "bzip", "jpeg", "jpeg+lzo")


@pytest.mark.parametrize("method", METHODS)
def test_encode_throughput(benchmark, jet_frames, method):
    frame = jet_frames[256]
    codec = get_codec(method)
    payload = benchmark(codec.encode_image, frame)
    assert len(payload) > 0
    benchmark.extra_info["ratio"] = frame.nbytes / len(payload)


@pytest.mark.parametrize("method", METHODS)
def test_decode_throughput(benchmark, jet_frames, method):
    frame = jet_frames[256]
    codec = get_codec(method)
    payload = codec.encode_image(frame)
    out = benchmark(codec.decode_image, payload)
    assert out.shape == frame.shape


def test_lzo_decodes_faster_than_bzip(benchmark, jet_frames):
    """The paper's stated reason for offering LZO at all."""
    import time

    frame = jet_frames[256]
    lzo = get_codec("lzo")
    bzip = get_codec("bzip")
    lzo_payload = lzo.encode_image(frame)
    bzip_payload = bzip.encode_image(frame)

    def clock(fn, *args, repeat=3):
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    def compare():
        return (
            clock(lzo.decode_image, lzo_payload),
            clock(bzip.decode_image, bzip_payload),
        )

    t_lzo, t_bzip = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t_lzo < t_bzip
    # and BZIP compresses tighter, the other side of the trade-off
    assert len(bzip_payload) < len(lzo_payload)
