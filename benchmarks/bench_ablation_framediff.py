"""Ablation (§7.1) — frame differencing on a real rendered animation.

The paper's future-work compression: "exploit frame (temporal) coherence
as the frame differencing technique demonstrated by Crockett [5]".  We
measure it against per-frame LZO and per-frame JPEG+LZO on really-
rendered jet sequences at two output cadences: *fine* time steps (high
temporal coherence — where the technique pays) and *coarse* time steps
(fast-evolving frames — where per-pixel deltas turn to noise and the
technique loses its edge).  This is exactly the trade-off that makes the
paper defer it to future work.
"""

from _util import emit, fmt_row

from repro.compress import get_codec
from repro.data.fields import jet_field
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb

SHAPE = (77, 77, 62)  # 0.6-scale jet grid
SIZE = 192
N_FRAMES = 4


def render_sequence(dt: float):
    tf = TransferFunction.jet()
    cam = Camera(image_size=(SIZE, SIZE))
    frames = []
    for k in range(N_FRAMES):
        vol = jet_field(SHAPE, t=40.0 + k * dt)
        frames.append(to_display_rgb(render_volume(vol, tf, cam)))
    return frames


def total_bytes(frames, codec_name):
    codec = get_codec(codec_name)
    return sum(len(codec.encode_image(f)) for f in frames)


def run_ablation():
    out = {}
    for regime, dt in (("fine-steps (dt=0.1)", 0.1), ("coarse-steps (dt=1)", 1.0)):
        frames = render_sequence(dt)
        out[regime] = {
            "framediff": total_bytes(frames, "framediff"),
            "lzo": total_bytes(frames, "lzo"),
            "jpeg+lzo": total_bytes(frames, "jpeg+lzo"),
        }
    return out


def test_ablation_frame_differencing(benchmark):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = [
        "Ablation: frame differencing vs per-frame compression",
        f"({N_FRAMES} consecutive {SIZE}x{SIZE} jet frames, total bytes)",
        "",
        fmt_row("regime", ["framediff", "lzo", "jpeg+lzo"]),
    ]
    for regime, row in data.items():
        lines.append(
            fmt_row(regime, [row["framediff"], row["lzo"], row["jpeg+lzo"]])
        )
    lines += [
        "",
        "frame differencing pays under high temporal coherence (fine",
        "steps) and loses its edge when consecutive frames decorrelate —",
        "while lossy JPEG+LZO dominates both regimes, which is why the",
        "paper ships JPEG and leaves frame differencing as future work.",
    ]
    emit("ablation_framediff", lines)

    fine = data["fine-steps (dt=0.1)"]
    coarse = data["coarse-steps (dt=1)"]
    # temporal coherence wins when frames are coherent...
    assert fine["framediff"] < fine["lzo"]
    # ...and the advantage shrinks (or flips) at coarse cadence
    fine_gain = fine["lzo"] / fine["framediff"]
    coarse_gain = coarse["lzo"] / coarse["framediff"]
    assert fine_gain > coarse_gain
    # the lossy codec still beats both lossless schemes outright
    assert fine["jpeg+lzo"] < fine["framediff"]
