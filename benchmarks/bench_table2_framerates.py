"""Table 2 — actual frame rates (fps) from NASA Ames to UC Davis.

X Window row vs compression row at the four image sizes.  Rates measure
the display path (transfer + client handling) with rendering hidden
behind the daemon's image buffer, which is how the paper's display-side
measurement works.
"""

from _util import IMAGE_SIZES, emit, fmt_row

from repro.net import XDisplayModel
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT
from repro.sim.costs import JET_PROFILE

PAPER = {
    "x": {128: 7.7, 256: 0.5, 512: 0.1, 1024: 0.03},
    "compression": {128: 9.0, 256: 5.6, 512: 2.4, 1024: 0.7},
}


def frame_rates():
    x_model = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
    costs = NASA_O2K.costs
    rates = {"x": {}, "compression": {}}
    for size in IMAGE_SIZES:
        px = size * size
        rates["x"][size] = x_model.frame_rate(px)
        nbytes = costs.compressed_frame_bytes(px, JET_PROFILE)
        t = (
            NASA_TO_UCD.transfer_s(nbytes)
            + O2_CLIENT.costs.decompress_s(px)
            + px * 3 / O2_CLIENT.local_display_bandwidth_Bps
            + O2_CLIENT.display_overhead_s
        )
        rates["compression"][size] = 1.0 / t
    return rates


def test_table2_frame_rates(benchmark):
    rates = benchmark.pedantic(frame_rates, rounds=1, iterations=1)

    lines = [
        "Table 2: actual frame rates NASA Ames -> UC Davis (fps)",
        "(measured | paper)",
        "",
        fmt_row("method \\ size", [f"{s}^2" for s in IMAGE_SIZES]),
    ]
    for method in ("x", "compression"):
        lines.append(
            fmt_row(
                "X Window" if method == "x" else "Compression",
                [
                    f"{rates[method][s]:.2f}|{PAPER[method][s]}"
                    for s in IMAGE_SIZES
                ],
                width=14,
            )
        )
    emit("table2_framerates", lines)

    for method in ("x", "compression"):
        for size in IMAGE_SIZES:
            got = rates[method][size]
            expected = PAPER[method][size]
            assert expected / 2 <= got <= expected * 2, (method, size, got)
    # compression sustains near-interactive rates where X collapses
    assert rates["compression"][512] > 20 * rates["x"][512]
