"""Ablation (§7.1) — the three remote-viewing modes, head to head.

For one time step explored from 10 viewpoints over the NASA→UCD WAN:

1. **frame streaming** (the paper's shipped system): render server-side,
   ship one compressed frame per viewpoint;
2. **IBR view set**: ship a ring of pre-rendered compressed views once,
   blend client-side;
3. **volume subset**: ship a reduced, losslessly-compressed copy of the
   data once, ray-cast client-side ("a reduced version of the data").

Measured with the real codecs/renderer for bytes and quality, and the
calibrated WAN for transfer time.
"""

import numpy as np
from _util import emit, fmt_row

from repro.compress import get_codec, psnr
from repro.core.subset_viewing import ClientSideRenderer, pack_volume_subset
from repro.data import turbulent_jet
from repro.render import (
    Camera,
    IBRClient,
    TransferFunction,
    build_view_set,
    render_volume,
    to_display_rgb,
)
from repro.sim.cluster import NASA_TO_UCD

SIZE = 128
VIEW_AZIMUTHS = tuple(np.linspace(0, 324, 10))


def run_modes():
    volume = turbulent_jet(scale=0.5, n_steps=2).volume(1)
    tf = TransferFunction.jet()
    codec = get_codec("jpeg+lzo")

    def true_view(az):
        cam = Camera(image_size=(SIZE, SIZE), azimuth=float(az), elevation=20.0)
        return to_display_rgb(render_volume(volume, tf, cam))

    truths = {az: true_view(az) for az in VIEW_AZIMUTHS}

    # 1. frame streaming: every viewpoint costs one compressed frame
    stream_bytes = sum(
        len(codec.encode_image(truths[az])) for az in VIEW_AZIMUTHS
    )
    stream_quality = min(
        psnr(truths[az], codec.decode_image(codec.encode_image(truths[az])))
        for az in VIEW_AZIMUTHS
    )

    # 2. IBR view set (12 stored views)
    view_set = build_view_set(
        volume, tf, time_step=1, image_size=(SIZE, SIZE),
        azimuths=tuple(range(0, 360, 30)), codec="jpeg+lzo",
    )
    ibr = IBRClient(view_set)
    ibr_bytes = view_set.total_bytes
    ibr_quality = min(
        psnr(truths[az], ibr.reconstruct(float(az), 20.0))
        for az in VIEW_AZIMUTHS
    )

    # 3. volume subset at half resolution
    payload = pack_volume_subset(volume, factor=2, codec="bzip")
    client = ClientSideRenderer(tf=tf)
    client.receive(payload)
    subset_bytes = len(payload)
    subset_quality = min(
        psnr(
            truths[az],
            to_display_rgb(
                client.render(
                    Camera(image_size=(SIZE, SIZE), azimuth=float(az), elevation=20.0)
                )
            ),
        )
        for az in VIEW_AZIMUTHS
    )

    return {
        "frame streaming": (stream_bytes, stream_quality),
        "IBR view set": (ibr_bytes, ibr_quality),
        "volume subset /2": (subset_bytes, subset_quality),
    }


def test_ablation_remote_modes(benchmark):
    modes = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    lines = [
        f"Ablation: remote-viewing modes, {len(VIEW_AZIMUTHS)} viewpoints of "
        f"one step at {SIZE}^2",
        "",
        fmt_row("mode", ["wire bytes", "xfer (s)", "min PSNR"]),
    ]
    for name, (nbytes, quality) in modes.items():
        lines.append(
            fmt_row(
                name,
                [nbytes, NASA_TO_UCD.transfer_s(nbytes), round(quality, 1)],
            )
        )
    lines += [
        "",
        "frame streaming: best fidelity, pays per interaction;",
        "IBR: one upload, view-interpolation artifacts between stored views;",
        "volume subset: one upload, any view, resolution-limited fidelity",
        "and needs client compute — the §7.1 'minimum graphics capability'.",
    ]
    emit("ablation_remote_modes", lines)

    stream_b, stream_q = modes["frame streaming"]
    ibr_b, ibr_q = modes["IBR view set"]
    subset_b, subset_q = modes["volume subset /2"]
    # per-interaction modes cost more wire than either one-shot mode here
    assert ibr_b < stream_b * 2  # comparable total for 10 interactions
    # fidelity ordering: streaming >= both client-side modes
    assert stream_q >= ibr_q - 1.0
    assert stream_q >= subset_q - 1.0
    # all modes stay usable
    assert min(stream_q, ibr_q, subset_q) > 18.0
