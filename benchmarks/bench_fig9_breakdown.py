"""Figure 9 — render vs display time breakdown per frame, 16 procs O2K.

Top chart (X): "The display time in this case can take as much as the
rendering time."  Bottom chart (daemon): "the frame rates are dominated
by the rendering but the image transmission."  We rebuild both charts by
running the pipeline simulation on the NASA Origin 2000 with 16
processors across the four image sizes.
"""

from _util import IMAGE_SIZES, emit, fmt_row

from repro.core import PipelineConfig, simulate_pipeline
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT
from repro.sim.costs import JET_PROFILE


def breakdown():
    out = {}
    for transport in ("x", "daemon"):
        out[transport] = {}
        for size in IMAGE_SIZES:
            result = simulate_pipeline(
                PipelineConfig(
                    n_procs=16,
                    n_groups=4,
                    n_steps=24,
                    profile=JET_PROFILE,
                    machine=NASA_O2K,
                    image_size=(size, size),
                    transport=transport,
                    route=NASA_TO_UCD,
                    client=O2_CLIENT,
                )
            ).metrics
            out[transport][size] = (
                result.mean_render_seconds,
                result.mean_display_seconds,
            )
    return out


def test_fig9_render_vs_display(benchmark):
    data = benchmark.pedantic(breakdown, rounds=1, iterations=1)

    lines = [
        "Figure 9: per-frame render vs display breakdown, 16 procs O2K (s)",
        "",
    ]
    for transport, title in (("x", "X display"), ("daemon", "display daemon")):
        lines.append(f"--- {title} ---")
        lines.append(fmt_row("image size", [f"{s}^2" for s in IMAGE_SIZES]))
        lines.append(
            fmt_row(
                "render time",
                [data[transport][s][0] for s in IMAGE_SIZES],
                prec=2,
            )
        )
        lines.append(
            fmt_row(
                "display time",
                [data[transport][s][1] for s in IMAGE_SIZES],
                prec=2,
            )
        )
        lines.append("")
    emit("fig9_breakdown", lines)

    # X: display rivals or exceeds rendering from 256² upward
    for size in (256, 512, 1024):
        render, display = data["x"][size]
        assert display > 0.7 * render, (size, render, display)
    # daemon: rendering dominates at every size
    for size in IMAGE_SIZES:
        render, display = data["daemon"][size]
        assert display < render, (size, render, display)
