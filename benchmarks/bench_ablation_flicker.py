"""Ablation (§7.1) — lossy-codec flicker on a real animation.

"One potential problem with lossy methods is that the loss could change
between adjacent frames … which could produce a flickering in the final
animation.  We have not experienced such a problem so far."  We measure
codec-induced temporal noise on consecutive really-rendered jet frames,
for JPEG at several qualities and for the lossless path, and test the
paper's observation: at the shipped quality the flicker stays below the
visibility rule of thumb.
"""

from _util import emit, fmt_row

from repro.compress import get_codec
from repro.compress.flicker import measure_flicker

QUALITIES = (90, 75, 50, 25)


def run_study(frames):
    rows = {}
    for q in QUALITIES:
        rows[f"jpeg q={q}"] = measure_flicker(frames, get_codec("jpeg", quality=q))
    rows["lzo (lossless)"] = measure_flicker(frames, get_codec("lzo"))
    return rows


def test_ablation_flicker(benchmark, jet_animation):
    rows = benchmark.pedantic(
        run_study, args=(jet_animation,), rounds=1, iterations=1
    )

    lines = [
        "Ablation: lossy-codec flicker on 4 consecutive 256^2 jet frames",
        "",
        fmt_row(
            "codec", ["excess RMS", "static RMS", "psnr std", "visible?"]
        ),
    ]
    for name, rep in rows.items():
        lines.append(
            fmt_row(
                name,
                [
                    round(rep.excess_temporal_rms, 3),
                    round(rep.static_region_rms, 3),
                    round(rep.psnr_std, 3),
                    "yes" if rep.visible else "no",
                ],
            )
        )
    lines += [
        "",
        "paper: 'We have not experienced such a problem so far' — at the",
        "shipped visually-lossless quality the static-region flicker sits",
        "below the ~1-level visibility threshold; crank the loss up and",
        "the §7.1 concern becomes measurable.",
    ]
    emit("ablation_flicker", lines)

    # lossless codecs cannot flicker
    assert rows["lzo (lossless)"].excess_temporal_rms == 0.0
    # the paper's regime: no visible flicker at shipped quality
    assert not rows["jpeg q=90"].visible
    # flicker grows monotonically as quality drops
    series = [rows[f"jpeg q={q}"].static_region_rms for q in QUALITIES]
    assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
