"""Ablation (§1) — mass-storage footprint of a time-varying dataset.

"It can take gigabytes to terabytes of storage space to store a single
data set."  This bench stores a jet sequence raw, quantized, and
quantized+compressed, measures the real on-disk footprints, and projects
them to the paper's full datasets — the facility-side decision the
post-processing scenario implies.
"""

from _util import emit, fmt_row

from repro.data import DatasetStore, turbulent_jet
from repro.sim.costs import JET_PROFILE, MIXING_PROFILE

VARIANTS = (
    ("raw float32", dict()),
    ("float32 + lzo", dict(codec="lzo")),
    ("8-bit quantized", dict(quantize=True)),
    ("8-bit + lzo", dict(codec="lzo", quantize=True)),
    ("8-bit + bzip", dict(codec="bzip", quantize=True)),
)


def measure(tmp_root):
    ds = turbulent_jet(scale=0.4, n_steps=4)
    out = {}
    for name, kw in VARIANTS:
        store = DatasetStore(tmp_root / name.replace(" ", "_"), **kw)
        store.save(ds)
        out[name] = store.stored_bytes() / 4  # bytes per step
    return out, ds


def test_ablation_storage(benchmark, tmp_path):
    per_step, ds = benchmark.pedantic(
        measure, args=(tmp_path,), rounds=1, iterations=1
    )
    raw = per_step["raw float32"]

    lines = [
        "Ablation: on-disk footprint per time step (0.4-scale jet)",
        "",
        fmt_row("variant", ["bytes/step", "vs raw"]),
    ]
    for name, _ in VARIANTS:
        lines.append(
            fmt_row(name, [int(per_step[name]), f"{per_step[name] / raw:.2f}x"])
        )
    # project measured ratios to the paper's full datasets
    best = min(per_step.values())
    jet_full = JET_PROFILE.bytes_per_step * 150
    mixing_full = MIXING_PROFILE.bytes_per_step * 265
    lines += [
        "",
        f"projection at the best ratio ({best / raw:.2f}x):",
        f"  full jet (150 steps):    {jet_full / 1e9:6.2f} GB -> "
        f"{jet_full * best / raw / 1e9:6.2f} GB",
        f"  full mixing (265 steps): {mixing_full / 1e9:6.2f} GB -> "
        f"{mixing_full * best / raw / 1e9:6.2f} GB",
        "(8-bit quantization costs <=0.2% value error; float32 barely",
        "compresses — mantissa noise defeats byte-oriented LZ)",
    ]
    emit("ablation_storage", lines)

    assert per_step["8-bit quantized"] < raw / 3.9
    assert per_step["8-bit + lzo"] < per_step["8-bit quantized"]
    # float32 + LZ barely helps (within 15% of raw either way)
    assert per_step["float32 + lzo"] > raw * 0.5
