"""Ablation (§4.2) — JPEG's decoder-side speed/quality trade-off.

"Another important aspect of JPEG is that the decoder can also trade off
decoding speed against image quality, by using fast but inaccurate
approximations to the required calculations."  We decode one payload at
the four scaled-IDCT levels and report wall-clock and PSNR, plus the
modeled effect on the O2's Table 2 frame rate at 1024² (where client
decompression dominates the frame interval).
"""

import time

from _util import emit, fmt_row

from repro.compress import JPEGCodec, psnr

LEVELS = (0, 1, 2, 3)
NAMES = {0: "exact (8x8 IDCT)", 1: "fast (4x4)", 2: "faster (2x2)", 3: "DC only"}


def run_ladder(frame):
    payload = JPEGCodec(quality=80).encode_image(frame)
    out = {}
    for level in LEVELS:
        codec = JPEGCodec(quality=80, fast_decode=level)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            decoded = codec.decode_image(payload)
            best = min(best, time.perf_counter() - t0)
        out[level] = (best, psnr(frame, decoded))
    return out


def test_ablation_jpeg_fast_decode(benchmark, jet_frames):
    frame = jet_frames[256]
    ladder = benchmark.pedantic(run_ladder, args=(frame,), rounds=1, iterations=1)

    lines = [
        "Ablation: JPEG scaled decoding (256^2 jet frame, quality 80)",
        "",
        fmt_row("level", ["decode (ms)", "PSNR (dB)"]),
    ]
    for level in LEVELS:
        t, q = ladder[level]
        lines.append(fmt_row(NAMES[level], [t * 1e3, q], prec=1))
    lines += [
        "",
        "(entropy decoding dominates this pure-Python decoder, so the",
        "wall-clock delta is modest here; on the paper's O2 the IDCT and",
        "upsample were the reconstruction bottleneck the knob targets)",
    ]
    emit("ablation_fast_decode", lines)

    quality = [ladder[level][1] for level in LEVELS]
    assert all(a > b for a, b in zip(quality, quality[1:]))
    assert quality[0] > 30.0  # exact decode is visually lossless regime
    assert quality[-1] > 12.0  # DC-only remains a usable preview
    # fast paths are never meaningfully slower than exact (wide margin:
    # entropy decode dominates and wall-clock is noisy on shared CPUs)
    assert ladder[3][0] <= ladder[0][0] * 1.5
