"""Ablation (§3/§5) — interactivity vs batch throughput across L.

"When interactive viewing is desired, start-up latency and inter-frame
delay play crucial role in determining the effectiveness of the system.
When visualization calculations are done in a batch mode, overall
execution time should be the major concern."  Plus §5's control-response
delay.  This bench puts all four criteria side by side per L, showing
that the *interactive* optimum sits at smaller L than the *batch*
optimum — the design tension the paper navigates.
"""

from _util import emit, fmt_row

from repro.core import PipelineConfig, control_response_latency, simulate_pipeline
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE

PROCS = 64
LS = (1, 2, 4, 8, 16, 32)


def sweep():
    out = {}
    for l_groups in LS:
        result = simulate_pipeline(
            PipelineConfig(
                n_procs=PROCS,
                n_groups=l_groups,
                n_steps=128,
                profile=JET_PROFILE,
                machine=RWCP_CLUSTER,
                image_size=(256, 256),
            )
        ).metrics
        out[l_groups] = {
            "overall": result.overall_time,
            "startup": result.start_up_latency,
            "interframe": result.inter_frame_delay,
            "control": control_response_latency(
                RWCP_CLUSTER, JET_PROFILE, PROCS, l_groups
            ),
        }
    return out


def test_ablation_interactivity(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: batch vs interactive criteria per partition count (P=64)",
        "",
        fmt_row("L", list(LS)),
        fmt_row("overall time (s)", [data[l]["overall"] for l in LS], prec=1),
        fmt_row("start-up (s)", [data[l]["startup"] for l in LS], prec=2),
        fmt_row("inter-frame (s)", [data[l]["interframe"] for l in LS], prec=3),
        fmt_row("control delay (s)", [data[l]["control"] for l in LS], prec=2),
    ]
    batch_best = min(LS, key=lambda l: data[l]["overall"])
    interactive_best = min(
        LS, key=lambda l: data[l]["startup"] + data[l]["control"]
    )
    lines += [
        "",
        f"batch optimum (overall time): L={batch_best}",
        f"interactive optimum (startup + control delay): L={interactive_best}",
        "the paper's §3 trade-off: deeper pipelining buys batch throughput",
        "at the cost of responsiveness.",
    ]
    emit("ablation_interactivity", lines)

    assert batch_best == 4
    assert interactive_best < batch_best
    # both latency criteria degrade monotonically with L
    startups = [data[l]["startup"] for l in LS]
    controls = [data[l]["control"] for l in LS]
    assert all(a < b for a, b in zip(startups, startups[1:]))
    assert all(a < b for a, b in zip(controls, controls[1:]))
