"""Session fixtures for the benchmark harness: real rendered jet frames."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _util import image_sizes  # noqa: E402

from repro.data import turbulent_jet, turbulent_vortex  # noqa: E402
from repro.render import (  # noqa: E402
    Camera,
    TransferFunction,
    render_volume,
    to_display_rgb,
)


@pytest.fixture(scope="session")
def jet_volume_full():
    """One full-resolution (129x129x104) turbulent-jet time step."""
    return turbulent_jet().volume(40)


@pytest.fixture(scope="session")
def jet_frames(jet_volume_full):
    """Real rendered jet frames at the paper's image sizes (uint8 RGB)."""
    tf = TransferFunction.jet()
    frames = {}
    for size in image_sizes():
        cam = Camera(image_size=(size, size))
        frames[size] = to_display_rgb(render_volume(jet_volume_full, tf, cam))
    return frames


@pytest.fixture(scope="session")
def vortex_frame():
    """A 256² rendering of the (scaled) turbulent-vortex dataset."""
    ds = turbulent_vortex(scale=0.5, n_steps=4)
    cam = Camera(image_size=(256, 256))
    rgba = render_volume(ds.volume(2), TransferFunction.vortex(), cam)
    return to_display_rgb(rgba)


@pytest.fixture(scope="session")
def jet_animation():
    """A short sequence of consecutive full-res jet frames at 256²."""
    ds = turbulent_jet()
    tf = TransferFunction.jet()
    cam = Camera(image_size=(256, 256))
    return [
        to_display_rgb(render_volume(ds.volume(t), tf, cam))
        for t in range(40, 44)
    ]
