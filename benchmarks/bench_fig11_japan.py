"""Figure 11 — overall time per frame, RWCP (Japan) → UC Davis, 64 procs.

X vs the display daemon at four image sizes over the trans-Pacific
route.  Claims: "The performance of X, as expected, is not acceptable.
The image transfer and X-display time took almost twice longer than the
NASA-UCD case"; with the daemon "the average transfer time is only about
a few seconds per frame even for the larger images."
"""

from _util import IMAGE_SIZES, emit, fmt_row

from repro.net import XDisplayModel
from repro.sim.cluster import (
    NASA_TO_UCD,
    O2_CLIENT,
    RWCP_CLUSTER,
    RWCP_TO_UCD,
)
from repro.sim.costs import JET_PROFILE


def frame_times():
    x_japan = XDisplayModel(route=RWCP_TO_UCD, client=O2_CLIENT)
    x_nasa = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
    costs = RWCP_CLUSTER.costs
    rows = {"x": {}, "daemon": {}, "x_nasa": {}}
    for size in IMAGE_SIZES:
        px = size * size
        rows["x"][size] = x_japan.frame_time_s(px)
        rows["x_nasa"][size] = x_nasa.frame_time_s(px)
        nbytes = costs.compressed_frame_bytes(px, JET_PROFILE)
        rows["daemon"][size] = (
            RWCP_TO_UCD.transfer_s(nbytes)
            + O2_CLIENT.costs.decompress_s(px)
            + px * 3 / O2_CLIENT.local_display_bandwidth_Bps
            + O2_CLIENT.display_overhead_s
        )
    return rows


def test_fig11_japan_route(benchmark):
    rows = benchmark.pedantic(frame_times, rounds=1, iterations=1)

    lines = [
        "Figure 11: overall time per frame, RWCP (Japan) -> UCD, 64 procs (s)",
        "",
        fmt_row("image size", [f"{s}^2" for s in IMAGE_SIZES]),
        fmt_row("X display", [rows["x"][s] for s in IMAGE_SIZES], prec=2),
        fmt_row("display daemon", [rows["daemon"][s] for s in IMAGE_SIZES], prec=3),
        fmt_row(
            "X Japan/NASA ratio",
            [rows["x"][s] / rows["x_nasa"][s] for s in IMAGE_SIZES],
            prec=2,
        ),
    ]
    emit("fig11_japan", lines)

    for size in (256, 512, 1024):
        ratio = rows["x"][size] / rows["x_nasa"][size]
        assert 1.4 < ratio < 2.6, (size, ratio)  # "almost twice longer"
    for size in IMAGE_SIZES:
        assert rows["daemon"][size] < 3.0  # "a few seconds per frame"
        assert rows["daemon"][size] < rows["x"][size]
