"""Ablation (§7.1) — image-based remote viewing vs per-view round trips.

Bethel's Visapult idea as the paper describes it: ship a set of
pre-rendered compressed views once, then reconstruct interactions on the
client.  We compare, for a 12-interaction exploration of one time step
over the NASA→UCD WAN: (a) the round-trip cost of re-rendering and
re-shipping each view, vs (b) shipping one view set and reconstructing
locally.
"""

import numpy as np
from _util import emit, fmt_row

from repro.data import turbulent_jet
from repro.render import (
    Camera,
    IBRClient,
    TransferFunction,
    build_view_set,
    render_volume,
    to_display_rgb,
)
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT
from repro.sim.costs import JET_PROFILE

N_INTERACTIONS = 12
SIZE = 128


def build(volume):
    return build_view_set(
        volume,
        TransferFunction.jet(),
        time_step=0,
        image_size=(SIZE, SIZE),
        azimuths=tuple(range(0, 360, 45)),
        codec="jpeg+lzo",
    )


def test_ablation_image_based_rendering(benchmark):
    volume = turbulent_jet(scale=0.5, n_steps=2).volume(1)
    view_set = benchmark.pedantic(build, args=(volume,), rounds=1, iterations=1)
    client = IBRClient(view_set)

    px = SIZE * SIZE
    costs = NASA_O2K.costs
    # per-interaction round trip: render on 16 procs + compress +
    # transfer + decompress (the §4 path)
    render = costs.group_render_s(JET_PROFILE, px, 16) + costs.composite_s(px, 16)
    frame_bytes = costs.compressed_frame_bytes(px, JET_PROFILE)
    roundtrip = (
        render
        + costs.compress_s(px)
        + NASA_TO_UCD.transfer_s(frame_bytes)
        + O2_CLIENT.costs.decompress_s(px)
    )
    # IBR: one set upload, then client-side blends (~two adds per pixel,
    # modeled via the client put bandwidth)
    set_upload = NASA_TO_UCD.transfer_s(view_set.total_bytes) + (
        O2_CLIENT.costs.decompress_s(px) * view_set.n_views
    )
    reconstruct = 2 * px * 3 / O2_CLIENT.local_display_bandwidth_Bps

    per_view_total = N_INTERACTIONS * roundtrip
    ibr_total = set_upload + N_INTERACTIONS * reconstruct

    # quality of a reconstructed in-between view
    probe_az = 22.5
    truth = to_display_rgb(
        render_volume(
            volume,
            TransferFunction.jet(),
            Camera(image_size=(SIZE, SIZE), azimuth=probe_az, elevation=20.0),
        )
    )
    recon = client.reconstruct(probe_az, 20.0)
    corr = float(
        np.corrcoef(recon.astype(float).ravel(), truth.astype(float).ravel())[0, 1]
    )

    lines = [
        "Ablation: image-based remote viewing (12 interactions, 128^2)",
        "",
        fmt_row("approach", ["first view (s)", "per view (s)", "total (s)"]),
        fmt_row(
            "round-trip re-render", [roundtrip, roundtrip, per_view_total], prec=3
        ),
        fmt_row(
            "IBR view set",
            [set_upload + reconstruct, reconstruct, ibr_total],
            prec=3,
        ),
        "",
        f"view set: {view_set.n_views} views, {view_set.total_bytes} bytes",
        f"reconstruction correlation with true render at az=22.5: {corr:.3f}",
    ]
    emit("ablation_ibr", lines)

    # interaction latency: local reconstruction is orders faster
    assert reconstruct < roundtrip / 10
    # and the session amortizes after a handful of interactions
    assert ibr_total < per_view_total
    assert corr > 0.7
