"""Ablation — the hybrid sub-image grouping suggested by Figure 10.

"This set of test results suggests that a hybrid approach might give us
the best performance.  That is, a small number of sub-images are combined
to form larger sub-images before compression."  With G=16 compositing
nodes, we compare shipping 16 raw strips vs combining them into 1, 2, 4,
or 8 larger pieces, on the end-to-end display-path cost (compress +
transfer + decompress) using the calibrated models.
"""

from _util import emit, fmt_row

from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT
from repro.sim.costs import JET_PROFILE

GROUP_NODES = 16
PIECES = (1, 2, 4, 8, 16)
PIXELS = 512 * 512


def path_costs():
    costs = NASA_O2K.costs
    out = {}
    for pieces in PIECES:
        compress = costs.compress_s(PIXELS, pieces)
        nbytes = costs.compressed_frame_bytes(PIXELS, JET_PROFILE, pieces)
        transfer = NASA_TO_UCD.transfer_s(nbytes)
        decompress = O2_CLIENT.costs.decompress_s(PIXELS, pieces)
        # combining 16 strips into `pieces` groups costs one extra
        # intra-group image exchange when pieces < 16
        combine = (
            0.0
            if pieces == GROUP_NODES
            else PIXELS * 4 / costs.internal_bandwidth_Bps
        )
        out[pieces] = (combine, compress, transfer, decompress)
    return out


def test_ablation_hybrid_sub_image_grouping(benchmark):
    table = benchmark.pedantic(path_costs, rounds=1, iterations=1)

    lines = [
        "Ablation: hybrid sub-image grouping, G=16 nodes, 512^2 frame (s)",
        "",
        fmt_row("pieces", list(PIECES)),
        fmt_row("combine", [table[p][0] for p in PIECES], prec=4),
        fmt_row("compress", [table[p][1] for p in PIECES], prec=4),
        fmt_row("transfer", [table[p][2] for p in PIECES], prec=4),
        fmt_row("decompress", [table[p][3] for p in PIECES], prec=4),
        fmt_row("total", [sum(table[p]) for p in PIECES], prec=4),
    ]
    best = min(PIECES, key=lambda p: sum(table[p]))
    lines += ["", f"best piece count: {best} (paper suggests 2-8)"]
    emit("ablation_hybrid_pieces", lines)

    totals = {p: sum(table[p]) for p in PIECES}
    # the hybrid (a few combined pieces) beats both extremes
    assert best in (2, 4, 8)
    assert totals[best] < totals[1]
    assert totals[best] < totals[16]
