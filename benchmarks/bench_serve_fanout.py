"""Serving-layer fan-out: delivered frames/sec vs. viewer and shard count.

The north-star workload is many viewers on one rendered stream.  This
bench publishes one synthetic animated sequence through the serving
layer and records delivered-frames/sec for a *cold* cache (every
(frame, tier) encoded once) and a *warm* cache (the same frame ids
republished, pure cache hits).  Two sweeps:

- the legacy **viewers** sweep (1/4/16/64 viewers, one shard, every
  viewer decoding) — the trajectory tracked since the broker landed;
- the **shards** sweep (1/2/4 shards x 4..256 viewers), where brokers
  run behind the :class:`~repro.serve.shard.SessionRouter` with a
  2-worker encode pool at >1 shard, and only ``AUDIT_VIEWERS`` viewers
  decode (the rest ack without decompressing, so the numbers measure
  serving capacity rather than this one process's decode CPU — see
  ``repro.serve.fanout``).  Warm fps should be flat-or-rising with
  viewer count at >=2 shards; its rows also carry warm delivery-latency
  percentiles (publish->receipt).

Run under pytest (quick sanity rows) or as a script for the tracked
machine-readable trajectory::

    PYTHONPATH=src python benchmarks/bench_serve_fanout.py --json

writes/updates ``BENCH_serve.json`` at the repo root under ``--label``.
``--shard-delta`` prints a small markdown table (warm fps at 4 vs 64
viewers, 1 vs 2 shards) for CI job summaries.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit, fast_mode, fmt_row  # noqa: E402

from repro.serve.fanout import run_fanout, synthetic_frames  # noqa: E402

VIEWER_COUNTS = (1, 4, 16, 64)
SHARD_COUNTS = (1, 2, 4)
SHARD_VIEWER_COUNTS = (4, 16, 64, 256)
#: decoding viewers per run in the shards sweep; the rest are ack-only
AUDIT_VIEWERS = 2
#: pool size used whenever the shards sweep runs more than one shard
SHARD_ENCODE_WORKERS = 2


def _counts():
    return VIEWER_COUNTS[:3] if fast_mode() else VIEWER_COUNTS


@pytest.mark.parametrize("n_viewers", (1, 4))
def test_fanout_delivers_everything(benchmark, n_viewers):
    """Small-scale correctness under the benchmark harness: every viewer
    gets every frame when nobody is slow."""
    frames = synthetic_frames(16, size=64)
    result = benchmark.pedantic(
        run_fanout, args=(n_viewers, frames), kwargs={"credit_limit": 32},
        rounds=1, iterations=1,
    )
    assert result["cold"]["delivered_frames"] == n_viewers * len(frames)
    assert result["cold"]["encodes"] == len(frames)


def test_fanout_sweep_table():
    """The full sweep as a persisted artifact table."""
    frames = synthetic_frames(16, size=64)
    lines = [fmt_row("viewers", ["cold fps", "warm fps", "encodes", "hit%"])]
    for n in _counts():
        r = run_fanout(n, frames, credit_limit=32)
        lines.append(
            fmt_row(
                str(n),
                [
                    r["cold"]["delivered_fps"],
                    r["warm"]["delivered_fps"],
                    r["cold"]["encodes"] + r["warm"]["encodes"],
                    100.0 * r["warm"]["cache_hit_ratio"],
                ],
            )
        )
    emit("serve_fanout", lines)


# -- machine-readable mode (perf trajectory across PRs) -----------------------


def _row(r: dict) -> dict:
    return {
        "cold_fps": round(r["cold"]["delivered_fps"], 1),
        "warm_fps": round(r["warm"]["delivered_fps"], 1),
        "cold_encodes": r["cold"]["encodes"],
        "warm_encodes": r["warm"]["encodes"],
        "warm_hit_ratio": round(r["warm"]["cache_hit_ratio"], 4),
        "warm_p50_ms": r["warm"]["latency_p50_ms"],
        "warm_p99_ms": r["warm"]["latency_p99_ms"],
        "warm_viewer_p99_ms_max": r["warm"]["viewer_p99_ms_max"],
        "dropped": r["dropped_frames"],
        "transitions": r["tier_transitions"],
    }


def measure_sweep(n_frames: int = 32, size: int = 96) -> dict:
    frames = synthetic_frames(n_frames, size=size)
    # legacy single-shard sweep: every viewer decodes, directly
    # comparable with the trajectory recorded before sharding existed
    rows = {}
    for n in VIEWER_COUNTS:
        rows[str(n)] = _row(run_fanout(n, frames, credit_limit=32))
    # shards axis: serving capacity at scale (audited decode sampling)
    shard_rows = {}
    for shards in SHARD_COUNTS:
        per_viewers = {}
        for n in SHARD_VIEWER_COUNTS:
            r = run_fanout(
                n,
                frames,
                credit_limit=32,
                shards=shards,
                encode_workers=SHARD_ENCODE_WORKERS if shards > 1 else 0,
                audit_viewers=AUDIT_VIEWERS,
            )
            per_viewers[str(n)] = _row(r)
        shard_rows[str(shards)] = {
            "encode_workers": SHARD_ENCODE_WORKERS if shards > 1 else 0,
            "viewers": per_viewers,
        }
    return {
        "n_frames": n_frames,
        "image_size": size,
        "viewers": rows,
        "audit_viewers": AUDIT_VIEWERS,
        "shards": shard_rows,
    }


def write_json(path, label: str, n_frames: int, size: int) -> dict:
    import json

    path = Path(path)
    doc = {}
    if path.exists():
        doc = json.loads(path.read_text())
    doc[label] = measure_sweep(n_frames=n_frames, size=size)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def shard_delta_table(n_frames: int = 16, size: int = 64) -> list[str]:
    """Quick warm-fps comparison (markdown rows) for CI job summaries:
    4 vs 64 viewers at 1 and 2 shards, decode audited on 2 viewers."""
    frames = synthetic_frames(n_frames, size=size)
    lines = [
        "| shards | warm f/s @4 viewers | warm f/s @64 viewers | delta |",
        "|---|---|---|---|",
    ]
    for shards in (1, 2):
        warm = {}
        for n in (4, 64):
            r = run_fanout(
                n,
                frames,
                credit_limit=32,
                shards=shards,
                encode_workers=SHARD_ENCODE_WORKERS if shards > 1 else 0,
                audit_viewers=AUDIT_VIEWERS,
            )
            warm[n] = r["warm"]["delivered_fps"]
        ratio = warm[64] / warm[4] if warm[4] else 0.0
        lines.append(
            f"| {shards} | {warm[4]:.1f} | {warm[64]:.1f} | {ratio:.2f}x |"
        )
    return lines


def main(argv=None) -> None:
    import argparse

    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true", help="write BENCH_serve.json")
    ap.add_argument(
        "--shard-delta",
        action="store_true",
        help="print the warm-fps shard scaling table (markdown) and exit",
    )
    ap.add_argument("--out", default=str(repo_root / "BENCH_serve.json"))
    ap.add_argument("--label", default="current")
    ap.add_argument("--frames", type=int, default=32)
    ap.add_argument("--size", type=int, default=96)
    args = ap.parse_args(argv)
    if args.shard_delta:
        for line in shard_delta_table():
            print(line)
        return
    if not args.json:
        ap.error("nothing to do: pass --json or --shard-delta")
    doc = write_json(args.out, args.label, args.frames, args.size)
    for n, row in sorted(doc[args.label]["viewers"].items(), key=lambda kv: int(kv[0])):
        print(
            f"{n:>3} viewers: cold {row['cold_fps']:>8.1f} f/s  "
            f"warm {row['warm_fps']:>8.1f} f/s  "
            f"encodes {row['cold_encodes']}+{row['warm_encodes']}  "
            f"warm hit {row['warm_hit_ratio'] * 100:.1f}%"
        )
    for shards, block in sorted(
        doc[args.label].get("shards", {}).items(), key=lambda kv: int(kv[0])
    ):
        for n, row in sorted(
            block["viewers"].items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"{shards} shard(s) x {n:>3} viewers: "
                f"cold {row['cold_fps']:>8.1f} f/s  "
                f"warm {row['warm_fps']:>8.1f} f/s  "
                f"warm p99 {row['warm_p99_ms']:.1f} ms"
            )


if __name__ == "__main__":
    main()
