"""Serving-layer fan-out: delivered frames/sec vs. viewer count.

The north-star workload is many viewers on one rendered stream.  This
bench publishes one synthetic animated sequence through the
:class:`~repro.serve.broker.SessionBroker` to 1/4/16/64 concurrent
decoding viewers and records delivered-frames/sec for a *cold* cache
(every (frame, tier) encoded once) and a *warm* cache (the same frame
ids republished, pure cache hits).  The spread between passes is the
encode work the shared cache removes; the per-count encode totals show
encode work is independent of viewer count.

Run under pytest (quick sanity rows) or as a script for the tracked
machine-readable trajectory::

    PYTHONPATH=src python benchmarks/bench_serve_fanout.py --json

writes/updates ``BENCH_serve.json`` at the repo root under ``--label``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit, fast_mode, fmt_row  # noqa: E402

from repro.serve.fanout import run_fanout, synthetic_frames  # noqa: E402

VIEWER_COUNTS = (1, 4, 16, 64)


def _counts():
    return VIEWER_COUNTS[:3] if fast_mode() else VIEWER_COUNTS


@pytest.mark.parametrize("n_viewers", (1, 4))
def test_fanout_delivers_everything(benchmark, n_viewers):
    """Small-scale correctness under the benchmark harness: every viewer
    gets every frame when nobody is slow."""
    frames = synthetic_frames(16, size=64)
    result = benchmark.pedantic(
        run_fanout, args=(n_viewers, frames), kwargs={"credit_limit": 32},
        rounds=1, iterations=1,
    )
    assert result["cold"]["delivered_frames"] == n_viewers * len(frames)
    assert result["cold"]["encodes"] == len(frames)


def test_fanout_sweep_table():
    """The full sweep as a persisted artifact table."""
    frames = synthetic_frames(16, size=64)
    lines = [fmt_row("viewers", ["cold fps", "warm fps", "encodes", "hit%"])]
    for n in _counts():
        r = run_fanout(n, frames, credit_limit=32)
        lines.append(
            fmt_row(
                str(n),
                [
                    r["cold"]["delivered_fps"],
                    r["warm"]["delivered_fps"],
                    r["cold"]["encodes"] + r["warm"]["encodes"],
                    100.0 * r["warm"]["cache_hit_ratio"],
                ],
            )
        )
    emit("serve_fanout", lines)


# -- machine-readable mode (perf trajectory across PRs) -----------------------


def measure_sweep(n_frames: int = 32, size: int = 96) -> dict:
    frames = synthetic_frames(n_frames, size=size)
    rows = {}
    for n in VIEWER_COUNTS:
        r = run_fanout(n, frames, credit_limit=32)
        rows[str(n)] = {
            "cold_fps": round(r["cold"]["delivered_fps"], 1),
            "warm_fps": round(r["warm"]["delivered_fps"], 1),
            "cold_encodes": r["cold"]["encodes"],
            "warm_encodes": r["warm"]["encodes"],
            "warm_hit_ratio": round(r["warm"]["cache_hit_ratio"], 4),
            "dropped": r["dropped_frames"],
            "transitions": r["tier_transitions"],
        }
    return {"n_frames": n_frames, "image_size": size, "viewers": rows}


def write_json(path, label: str, n_frames: int, size: int) -> dict:
    import json

    path = Path(path)
    doc = {}
    if path.exists():
        doc = json.loads(path.read_text())
    doc[label] = measure_sweep(n_frames=n_frames, size=size)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def main(argv=None) -> None:
    import argparse

    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true", help="write BENCH_serve.json")
    ap.add_argument("--out", default=str(repo_root / "BENCH_serve.json"))
    ap.add_argument("--label", default="current")
    ap.add_argument("--frames", type=int, default=32)
    ap.add_argument("--size", type=int, default=96)
    args = ap.parse_args(argv)
    if not args.json:
        ap.error("nothing to do: pass --json")
    doc = write_json(args.out, args.label, args.frames, args.size)
    for n, row in sorted(doc[args.label]["viewers"].items(), key=lambda kv: int(kv[0])):
        print(
            f"{n:>3} viewers: cold {row['cold_fps']:>8.1f} f/s  "
            f"warm {row['warm_fps']:>8.1f} f/s  "
            f"encodes {row['cold_encodes']}+{row['warm_encodes']}  "
            f"warm hit {row['warm_hit_ratio'] * 100:.1f}%"
        )


if __name__ == "__main__":
    main()
