"""Ablation (§3) — the three processor-management approaches.

Approach 1: intra-volume only (L=1, all P procs on one volume at a
time).  Approach 2: inter-volume only (L=P, one processor per volume).
Approach 3: hybrid (1 < L < P).  Claim: "the third approach indeed
performs the best among the three for batch-mode rendering."
"""

from _util import emit, fmt_row

from repro.core import PipelineConfig, simulate_pipeline
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


def run(procs, l_groups):
    return simulate_pipeline(
        PipelineConfig(
            n_procs=procs,
            n_groups=l_groups,
            n_steps=128,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(256, 256),
            transport="store",
        )
    ).metrics


def compare(procs=32):
    return {
        "intra-volume (L=1)": run(procs, 1),
        "hybrid (L=4)": run(procs, 4),
        f"inter-volume (L={procs})": run(procs, procs),
    }


def test_ablation_three_approaches(benchmark):
    results = benchmark.pedantic(compare, rounds=1, iterations=1)

    lines = [
        "Ablation: processor-management approaches (P=32, 128 jet steps)",
        "",
        fmt_row("approach", ["overall (s)", "startup (s)", "inter-frame (s)"]),
    ]
    for name, m in results.items():
        lines.append(
            fmt_row(
                name,
                [m.overall_time, m.start_up_latency, m.inter_frame_delay],
                prec=2,
            )
        )
    emit("ablation_approaches", lines)

    hybrid = results["hybrid (L=4)"]
    intra = results["intra-volume (L=1)"]
    inter = results["inter-volume (L=32)"]
    assert hybrid.overall_time < intra.overall_time
    assert hybrid.overall_time < inter.overall_time
    # the trade-off: intra has the best latency, inter the worst
    assert intra.start_up_latency < hybrid.start_up_latency < inter.start_up_latency
