"""Fault-resilience sweep: delivered-frame ratio under WAN impairments.

The resilience layer's claim is that a lossy, jittery wide-area link
degrades the stream (to cheaper tiers and, at the limit, frame
skipping) instead of breaking it.  This bench sweeps a loss × jitter
grid over :func:`~repro.serve.faultrun.run_with_faults` and records the
delivered-frame ratio (acked + deliberately stride-skipped, over
published) plus the tier-degradation each cell provoked, and one
disconnect scenario exercising reconnect-with-resume.

Run under pytest (quick sanity rows) or as a script for the tracked
machine-readable trajectory::

    PYTHONPATH=src python benchmarks/bench_faults.py --json

writes/updates ``BENCH_faults.json`` at the repo root under ``--label``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit, fast_mode, fmt_row  # noqa: E402

from repro.net.faults import FaultPlan  # noqa: E402
from repro.serve.faultrun import run_with_faults  # noqa: E402

LOSS_GRID = (0.0, 0.05, 0.1)
JITTER_GRID = (0.0, 0.05, 0.1)
SEED = 1234


def _grids():
    if fast_mode():
        return (0.0, 0.05), (0.0, 0.1)
    return LOSS_GRID, JITTER_GRID


@pytest.mark.parametrize("loss", (0.0, 0.05))
def test_lossy_link_still_delivers(benchmark, loss):
    """Sanity under the benchmark harness: a clean and a 5%-loss link
    both deliver ≥95% with no client-observed duplicates."""
    plan = FaultPlan(seed=SEED, loss_ratio=loss, jitter_s=0.05)
    report = benchmark.pedantic(
        run_with_faults, args=(plan,),
        kwargs={"n_frames": 48, "n_viewers": 2, "pace_s": 0.02},
        rounds=1, iterations=1,
    )
    assert report["delivered_ratio"] >= 0.95
    for session in report["sessions"].values():
        assert session["observed_duplicates"] == 0


def test_faults_sweep_table():
    """The loss × jitter grid as a persisted artifact table."""
    losses, jitters = _grids()
    lines = [
        fmt_row("loss/jitter", ["ratio", "acks", "skips", "drops", "trans"])
    ]
    for loss in losses:
        for jitter in jitters:
            plan = FaultPlan(seed=SEED, loss_ratio=loss, jitter_s=jitter)
            r = run_with_faults(plan, n_frames=48, n_viewers=2, pace_s=0.02)
            sessions = r["sessions"].values()
            lines.append(
                fmt_row(
                    f"{loss:.2f}/{jitter:.2f}",
                    [
                        r["delivered_ratio"],
                        sum(s["acks"] for s in sessions),
                        sum(s["skipped"] for s in sessions),
                        sum(s["dropped"] for s in sessions),
                        sum(s["transitions"] for s in sessions),
                    ],
                )
            )
    emit("faults", lines)


# -- machine-readable mode (resilience trajectory across PRs) -----------------


def _cell_summary(report: dict) -> dict:
    sessions = report["sessions"].values()
    return {
        "delivered_ratio": report["delivered_ratio"],
        "mean_delivered_ratio": report["mean_delivered_ratio"],
        "acks": sum(s["acks"] for s in sessions),
        "skipped": sum(s["skipped"] for s in sessions),
        "dropped": sum(s["dropped"] for s in sessions),
        "tier_transitions": sum(s["transitions"] for s in sessions),
        "final_tiers": sorted(s["tier"] for s in sessions),
        "duplicates": sum(s["observed_duplicates"] for s in sessions),
        "elapsed_s": report["elapsed_s"],
    }


def measure_grid(n_frames: int = 96, n_viewers: int = 2) -> dict:
    cells = {}
    for loss in LOSS_GRID:
        for jitter in JITTER_GRID:
            plan = FaultPlan(seed=SEED, loss_ratio=loss, jitter_s=jitter)
            report = run_with_faults(
                plan, n_frames=n_frames, n_viewers=n_viewers
            )
            cells[f"loss{loss:.2f}_jitter{jitter:.2f}"] = _cell_summary(report)
    # the reconnect scenario: a mid-stream cut at 5% loss / 100 ms jitter
    plan = FaultPlan(
        seed=SEED, loss_ratio=0.05, jitter_s=0.1, disconnect_after=24
    )
    report = run_with_faults(plan, n_frames=n_frames, n_viewers=n_viewers)
    cell = _cell_summary(report)
    cell["resumes"] = report["resumes"]
    cells["disconnect_resume"] = cell
    # the relay-hop cell: same 5% loss / 100 ms jitter weather, but on
    # the relay→viewer link of an origin → relay → viewers topology —
    # the relay waits on credits instead of dropping, so this cell
    # documents what interposing the edge tier does to delivery
    plan = FaultPlan(seed=SEED, loss_ratio=0.05, jitter_s=0.1)
    report = run_with_faults(
        plan, n_frames=n_frames, n_viewers=n_viewers, relays=1
    )
    cell = _cell_summary(report)
    cell["relays"] = report["relays"]
    cells["relay_hop"] = cell
    return {
        "n_frames": n_frames,
        "n_viewers": n_viewers,
        "seed": SEED,
        "cells": cells,
    }


def write_json(path, label: str, n_frames: int, n_viewers: int) -> dict:
    import json

    path = Path(path)
    doc = {}
    if path.exists():
        doc = json.loads(path.read_text())
    doc[label] = measure_grid(n_frames=n_frames, n_viewers=n_viewers)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def main(argv=None) -> None:
    import argparse

    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true", help="write BENCH_faults.json")
    ap.add_argument("--out", default=str(repo_root / "BENCH_faults.json"))
    ap.add_argument("--label", default="current")
    ap.add_argument("--frames", type=int, default=96)
    ap.add_argument("--viewers", type=int, default=2)
    args = ap.parse_args(argv)
    if not args.json:
        ap.error("nothing to do: pass --json")
    doc = write_json(args.out, args.label, args.frames, args.viewers)
    for key, cell in sorted(doc[args.label]["cells"].items()):
        extra = f"  resumes {cell['resumes']}" if "resumes" in cell else ""
        print(
            f"{key:>24}: ratio {cell['delivered_ratio']:.4f}  "
            f"acks {cell['acks']:>4}  skips {cell['skipped']:>3}  "
            f"drops {cell['dropped']:>3}  tiers {cell['final_tiers']}{extra}"
        )


if __name__ == "__main__":
    main()
