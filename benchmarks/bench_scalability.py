"""Scalability study — the companion paper [15]'s experimental framing.

Strong scaling (128 jet steps on 1..64 RWCP processors, each point at
its own best L), weak scaling (2 steps per processor), and the per-L
bottleneck attribution that explains Figure 6's optimum.
"""

from _util import emit, fmt_row

from repro.core import bottleneck_report, strong_scaling, weak_scaling
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


def run_study():
    strong = strong_scaling(
        RWCP_CLUSTER,
        JET_PROFILE,
        proc_counts=(1, 2, 4, 8, 16, 32, 64),
        n_steps=64,
    )
    weak = weak_scaling(
        RWCP_CLUSTER, JET_PROFILE, proc_counts=(4, 8, 16, 32, 64)
    )
    bottlenecks = bottleneck_report(RWCP_CLUSTER, JET_PROFILE, n_procs=64)
    return strong, weak, bottlenecks


def test_scalability_study(benchmark):
    strong, weak, bottlenecks = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )

    lines = ["Scalability study (turbulent jet, 256x256, RWCP cluster)", ""]
    lines.append("strong scaling (64 steps):")
    lines.append(
        fmt_row("P", [p.n_procs for p in strong])
    )
    lines.append(fmt_row("best L", [p.best_partition for p in strong]))
    lines.append(fmt_row("overall (s)", [p.overall_time for p in strong], prec=1))
    lines.append(fmt_row("speedup", [p.speedup for p in strong], prec=2))
    lines.append(
        fmt_row("efficiency %", [p.efficiency * 100 for p in strong], prec=1)
    )
    lines.append("")
    lines.append("weak scaling (2 steps per processor):")
    lines.append(fmt_row("P", [p.n_procs for p in weak]))
    lines.append(fmt_row("overall (s)", [p.overall_time for p in weak], prec=1))
    lines.append(
        fmt_row("efficiency %", [p.efficiency * 100 for p in weak], prec=1)
    )
    lines.append("")
    lines.append("bottleneck per L (P=64, s/frame demanded of each stage):")
    ls = sorted(bottlenecks)
    lines.append(fmt_row("L", ls))
    for stage in ("render", "storage", "output"):
        lines.append(
            fmt_row(stage, [bottlenecks[l][stage] for l in ls], prec=3)
        )
    emit("scalability", lines)

    # shape assertions
    speedups = [p.speedup for p in strong]
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    assert strong[-1].efficiency > 0.5
    weak_times = [p.overall_time for p in weak]
    assert max(weak_times) / min(weak_times) < 1.6
    # the Figure 6 mechanism: render-bound at L=1, storage-bound at L=32
    row1, row32 = bottlenecks[1], bottlenecks[32]
    assert row1["render"] > row1["storage"]
    assert row32["storage"] > row32["render"]
