"""Figure 7 — the three §3 metrics vs degree of partitioning, P = 32.

Paper claims: start-up latency "monotonically increases with the number
of partitions since fewer processors are dedicated to the rendering of a
single data volume"; inter-frame delay "exhibits a somewhat similar curve
as that associated with overall execution time".
"""

import numpy as np
from _util import emit, fmt_row

from repro.core import PipelineConfig, simulate_pipeline
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE

PROCS = 32
LS = (1, 2, 4, 8, 16, 32)


def sweep_metrics():
    out = {}
    for l_groups in LS:
        m = simulate_pipeline(
            PipelineConfig(
                n_procs=PROCS,
                n_groups=l_groups,
                n_steps=128,
                profile=JET_PROFILE,
                machine=RWCP_CLUSTER,
                image_size=(256, 256),
                transport="store",
            )
        ).metrics
        out[l_groups] = (
            m.start_up_latency,
            m.overall_time,
            m.inter_frame_delay,
        )
    return out


def test_fig7_three_metrics(benchmark):
    sweep = benchmark.pedantic(sweep_metrics, rounds=1, iterations=1)

    lines = [
        "Figure 7: performance metrics vs number of partitions (P = 32)",
        "(turbulent jet, 128 steps, 256x256 images, RWCP PC cluster)",
        "",
        fmt_row("L", list(LS)),
        fmt_row("start-up latency (s)", [sweep[l][0] for l in LS], prec=2),
        fmt_row("overall time (s)", [sweep[l][1] for l in LS], prec=1),
        fmt_row("inter-frame delay (s)", [sweep[l][2] for l in LS], prec=3),
    ]
    emit("fig7_metrics", lines)

    startups = [sweep[l][0] for l in LS]
    overall = np.array([sweep[l][1] for l in LS])
    inter = np.array([sweep[l][2] for l in LS])
    # start-up latency monotonically increases with L
    assert all(a < b for a, b in zip(startups, startups[1:]))
    # inter-frame delay tracks overall time
    assert np.corrcoef(overall, inter)[0, 1] > 0.95
    # overall time has its optimum at L=4
    assert min(LS, key=lambda l: sweep[l][1]) == 4
