"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, prints it
in the paper's row/series layout, and persists the text to
``benchmarks/results/`` so EXPERIMENTS.md can reference the artifacts.

Set ``REPRO_BENCH_FAST=1`` to cap image sizes at 512² (cuts the Table 1
and Figure 10 benches from minutes to seconds on slow machines).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: the paper's four image sizes (pixels per side)
IMAGE_SIZES = (128, 256, 512, 1024)


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def image_sizes() -> tuple[int, ...]:
    return IMAGE_SIZES[:3] if fast_mode() else IMAGE_SIZES


def emit(name: str, lines: list[str]) -> str:
    """Print a reproduced artifact and persist it under results/."""
    text = "\n".join(lines)
    banner = f"===== {name} ====="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def fmt_row(label: str, values, width: int = 12, prec: int = 3) -> str:
    cells = []
    for v in values:
        if isinstance(v, float):
            cells.append(f"{v:{width}.{prec}f}")
        else:
            cells.append(f"{v:>{width}}")
    return f"{label:<22}" + "".join(cells)
