"""Ablation (§1) — runtime co-processing vs the paper's post-processing.

Quantifies the sentence that motivates the whole system: "competing with
the numerical simulation to perform visualization calculations for
computing time and memory space on the same parallel supercomputer is
generally not acceptable by many scientists."
"""

from _util import emit, fmt_row

from repro.core import CoprocessConfig, simulate_scenario
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE

SCENARIOS = ("postprocess", "coprocess-share", "coprocess-partition")


def run_scenarios():
    config = CoprocessConfig(
        n_procs=64,
        n_steps=64,
        profile=JET_PROFILE,
        machine=RWCP_CLUSTER,
        sim_step_seconds=2.0,
        image_size=(256, 256),
        viz_procs=8,
    )
    return {s: simulate_scenario(config, s) for s in SCENARIOS}


def test_ablation_coprocessing(benchmark):
    results = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)

    lines = [
        "Ablation: runtime vs post-processing visualization",
        "(64-proc RWCP, 64 simulation steps of 2 s each, 256x256 frames)",
        "",
        fmt_row(
            "scenario", ["sim time (s)", "slowdown", "last frame (s)"]
        ),
    ]
    for name, r in results.items():
        lines.append(
            fmt_row(
                name,
                [r.simulation_time, r.simulation_slowdown, r.last_frame_time],
                prec=2,
            )
        )
    lines += [
        "",
        "post-processing leaves the simulation essentially undisturbed;",
        "sharing processors charges every rendered frame directly to the",
        "science — the paper's reason to render from mass storage.",
    ]
    emit("ablation_coprocess", lines)

    post = results["postprocess"]
    share = results["coprocess-share"]
    part = results["coprocess-partition"]
    assert post.simulation_slowdown < 1.2
    assert share.simulation_slowdown > post.simulation_slowdown
    assert part.simulation_slowdown > post.simulation_slowdown
    # but runtime modes do deliver frames during the run
    assert share.metrics is not None and part.metrics is not None
