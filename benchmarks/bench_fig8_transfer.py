"""Figure 8 — time to send one frame NASA Ames → UC Davis.

X-Window (raw 24-bit pixels) vs the compression-based display daemon
(JPEG+LZO payloads + client decompression), for four image sizes, using
the calibrated route/client models.  Claim: "as the image size increases,
the benefit of using compression becomes even more dramatic."
"""

from _util import IMAGE_SIZES, emit, fmt_row

from repro.net import XDisplayModel
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT
from repro.sim.costs import JET_PROFILE


def frame_times():
    x_model = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
    costs = NASA_O2K.costs
    rows = {"x": {}, "daemon": {}}
    for size in IMAGE_SIZES:
        px = size * size
        rows["x"][size] = x_model.frame_time_s(px)
        nbytes = costs.compressed_frame_bytes(px, JET_PROFILE)
        rows["daemon"][size] = (
            NASA_TO_UCD.transfer_s(nbytes)
            + O2_CLIENT.costs.decompress_s(px)
            + px * 3 / O2_CLIENT.local_display_bandwidth_Bps
            + O2_CLIENT.display_overhead_s
        )
    return rows


def test_fig8_frame_transfer_times(benchmark):
    rows = benchmark.pedantic(frame_times, rounds=1, iterations=1)

    lines = [
        "Figure 8: time to send one frame NASA Ames -> UC Davis (s)",
        "",
        fmt_row("image size", [f"{s}^2" for s in IMAGE_SIZES]),
        fmt_row("X display", [rows["x"][s] for s in IMAGE_SIZES], prec=2),
        fmt_row("display daemon", [rows["daemon"][s] for s in IMAGE_SIZES], prec=3),
        fmt_row(
            "speedup",
            [rows["x"][s] / rows["daemon"][s] for s in IMAGE_SIZES],
            prec=1,
        ),
    ]
    emit("fig8_transfer", lines)

    speedups = [rows["x"][s] / rows["daemon"][s] for s in IMAGE_SIZES]
    # compression always wins, and wins more as frames grow
    assert all(s > 1 for s in speedups)
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    # daemon keeps every size under ~2 s; X blows past 30 s at 1024²
    assert rows["daemon"][1024] < 2.0
    assert rows["x"][1024] > 30.0
