"""Relay-tier bench: origin offload and delivered-ratio parity.

The edge relay tier's claim is twofold.  First, a replay-heavy
workload (viewers looping over the same timeline) is served almost
entirely from relay stores: origin traffic stays ~``n_frames`` per
relay while viewer traffic is ``n_viewers x loops x n_frames``, so
origin offload approaches ``1 - relays/(viewers x loops)``.  Second,
putting a relay on the path costs nothing in delivery: under identical
WAN weather (5% loss, 100 ms jitter on viewer links) the relayed
topology's delivered-frame ratio matches the direct-origin baseline
within 0.02.  A third cell kills a relay mid-playback and records
whether its viewers failed over with the exact frame sequence.

Run under pytest (quick sanity rows) or as a script for the tracked
machine-readable trajectory::

    PYTHONPATH=src python benchmarks/bench_relay.py --json

writes/updates ``BENCH_relay.json`` at the repo root under ``--label``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit, fast_mode, fmt_row  # noqa: E402

from repro.net.faults import FaultPlan  # noqa: E402
from repro.relay.topology import run_relay_topology  # noqa: E402

SEED = 1234
PARITY_PLAN = FaultPlan(seed=SEED, loss_ratio=0.05, jitter_s=0.1)


def _workload():
    if fast_mode():
        return {"n_viewers": 4, "n_frames": 32, "loops": 2}
    return {"n_viewers": 8, "n_frames": 64, "loops": 3}


@pytest.mark.parametrize("n_relays", (1, 2))
def test_replay_workload_offloads_origin(benchmark, n_relays):
    """Sanity under the benchmark harness: looping viewers are served
    from relay stores, keeping origin traffic near one pass per relay."""
    report = benchmark.pedantic(
        run_relay_topology,
        kwargs={
            "n_relays": n_relays,
            "n_viewers": 6,
            "n_frames": 32,
            "loops": 3,
            "size": 24,
            "pace_s": 0.002,
        },
        rounds=1,
        iterations=1,
    )
    assert report["completed"], report
    assert report["delivered_ratio"] == 1.0
    assert report["duplicates"] == 0 and report["skips"] == 0
    # 6 viewers x 3 loops = 18 passes; origin pays ~1 per relay
    assert report["offload_ratio"] >= 1.0 - (n_relays + 0.5) / 18


def test_relay_sweep_table():
    """Offload vs relay count as a persisted artifact table."""
    kw = _workload()
    lines = [
        fmt_row(
            "relays",
            ["ratio", "offload", "origin", "viewer", "dups", "skips"],
        )
    ]
    for n_relays in (0, 1, 2):
        r = run_relay_topology(
            n_relays=n_relays, size=24, pace_s=0.002, **kw
        )
        lines.append(
            fmt_row(
                str(n_relays),
                [
                    r["delivered_ratio"],
                    r["offload_ratio"],
                    r["origin_frames"],
                    r["viewer_frames"],
                    r["duplicates"],
                    r["skips"],
                ],
            )
        )
    emit("relay", lines)


# -- machine-readable mode (relay-tier trajectory across PRs) -----------------


def _cell(report: dict) -> dict:
    return {
        "delivered_ratio": report["delivered_ratio"],
        "mean_delivered_ratio": report["mean_delivered_ratio"],
        "completed": report["completed"],
        "offload_ratio": report["offload_ratio"],
        "origin_frames": report["origin_frames"],
        "viewer_frames": report["viewer_frames"],
        "duplicates": report["duplicates"],
        "skips": report["skips"],
        "failovers": report["failovers"],
        "elapsed_s": report["elapsed_s"],
        "relays": report["relays"],
    }


def measure(n_viewers: int = 8, n_frames: int = 64, loops: int = 3) -> dict:
    cells = {}
    # the headline replay-heavy workload on a clean link: 2 relays,
    # every loop after the first served without touching the origin
    report = run_relay_topology(
        n_relays=2,
        n_viewers=n_viewers,
        n_frames=n_frames,
        loops=loops,
        size=24,
        pace_s=0.002,
    )
    cells["offload_replay"] = _cell(report)
    # parity under WAN weather: the same faulty viewer links, with and
    # without a relay in the path — delta is the cost of the hop
    direct = run_relay_topology(
        n_relays=0,
        n_viewers=n_viewers,
        n_frames=n_frames,
        loops=loops,
        size=24,
        pace_s=0.002,
        viewer_plan=PARITY_PLAN,
    )
    relayed = run_relay_topology(
        n_relays=2,
        n_viewers=n_viewers,
        n_frames=n_frames,
        loops=loops,
        size=24,
        pace_s=0.002,
        viewer_plan=PARITY_PLAN,
    )
    cells["parity_loss05_jitter100ms"] = {
        "direct": _cell(direct),
        "relayed": _cell(relayed),
        "delta": round(
            relayed["delivered_ratio"] - direct["delivered_ratio"], 4
        ),
    }
    # failover: kill relay0 mid-playback, viewers resume from the peer
    report = run_relay_topology(
        n_relays=2,
        n_viewers=n_viewers,
        n_frames=n_frames,
        loops=loops,
        size=24,
        pace_s=0.002,
        kill_relay_after=n_frames + n_frames // 2,
    )
    cells["failover_kill"] = _cell(report)
    cells["failover_kill"]["killed"] = report["topology"]["killed"]
    return {
        "n_viewers": n_viewers,
        "n_frames": n_frames,
        "loops": loops,
        "seed": SEED,
        "cells": cells,
    }


def write_json(path, label: str, n_viewers: int, n_frames: int,
               loops: int) -> dict:
    import json

    path = Path(path)
    doc = {}
    if path.exists():
        doc = json.loads(path.read_text())
    doc[label] = measure(
        n_viewers=n_viewers, n_frames=n_frames, loops=loops
    )
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def main(argv=None) -> None:
    import argparse

    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true", help="write BENCH_relay.json")
    ap.add_argument("--out", default=str(repo_root / "BENCH_relay.json"))
    ap.add_argument("--label", default="current")
    ap.add_argument("--viewers", type=int, default=8)
    ap.add_argument("--frames", type=int, default=64)
    ap.add_argument("--loops", type=int, default=3)
    args = ap.parse_args(argv)
    if not args.json:
        ap.error("nothing to do: pass --json")
    doc = write_json(
        args.out, args.label, args.viewers, args.frames, args.loops
    )
    cells = doc[args.label]["cells"]
    c = cells["offload_replay"]
    print(
        f"          offload_replay: offload {c['offload_ratio']:.4f}  "
        f"ratio {c['delivered_ratio']:.4f}  origin {c['origin_frames']}  "
        f"viewer {c['viewer_frames']}"
    )
    p = cells["parity_loss05_jitter100ms"]
    print(
        f"  parity_loss05_jitter100ms: direct "
        f"{p['direct']['delivered_ratio']:.4f}  relayed "
        f"{p['relayed']['delivered_ratio']:.4f}  delta {p['delta']:+.4f}"
    )
    c = cells["failover_kill"]
    print(
        f"           failover_kill: killed {c['killed']}  "
        f"failovers {c['failovers']}  dups {c['duplicates']}  "
        f"skips {c['skips']}  ratio {c['delivered_ratio']:.4f}"
    )


if __name__ == "__main__":
    main()
