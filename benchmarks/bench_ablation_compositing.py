"""Ablation — binary-swap vs serial (direct-send) compositing.

The paper's renderer uses binary-swap compositing [16].  This bench
compares the modeled per-frame compositing cost of binary swap against a
direct-send-to-one-node scheme across group sizes, and measures the real
wall-clock of both on the SPMD runtime at small scale.
"""

import time

import numpy as np
from _util import emit, fmt_row

from repro.machine import run_spmd
from repro.render import binary_swap, over
from repro.sim.costs import CostModel

GROUPS = (2, 4, 8, 16, 32, 64)
PIXELS = 256 * 256


def direct_send_s(costs: CostModel, pixels: int, group_size: int) -> float:
    """All G-1 partials funnel into one node, which does all the overs."""
    traffic = (
        pixels
        * costs.composite_bytes_per_pixel
        * (group_size - 1)
        / costs.internal_bandwidth_Bps
    )
    return costs.composite_latency_s + traffic


def model_table():
    costs = CostModel()
    return {
        g: (costs.composite_s(PIXELS, g), direct_send_s(costs, PIXELS, g))
        for g in GROUPS
    }


def measured_wallclock(nprocs=4, h=128, w=128):
    rng = np.random.default_rng(0)
    partials = []
    for _ in range(nprocs):
        alpha = rng.random((h, w, 1)).astype(np.float32)
        rgb = rng.random((h, w, 3)).astype(np.float32) * alpha
        partials.append(np.concatenate([rgb, alpha], axis=2))

    def swap_worker(comm):
        piece, rows = binary_swap(comm, partials[comm.rank])
        comm.gather((rows, piece))

    t0 = time.perf_counter()
    run_spmd(nprocs, swap_worker)
    t_swap = time.perf_counter() - t0

    def direct_worker(comm):
        if comm.rank == 0:
            acc = partials[0]
            for _ in range(comm.size - 1):
                acc = over(acc, comm.recv())
            return acc
        comm.send(partials[comm.rank], dest=0)

    t0 = time.perf_counter()
    run_spmd(nprocs, direct_worker)
    t_direct = time.perf_counter() - t0
    return t_swap, t_direct


def test_ablation_compositing(benchmark):
    table = model_table()
    t_swap, t_direct = benchmark.pedantic(
        measured_wallclock, rounds=1, iterations=1
    )

    lines = [
        "Ablation: binary-swap vs direct-send compositing (256^2 frame)",
        "",
        fmt_row("group size", list(GROUPS)),
        fmt_row("binary swap (s)", [table[g][0] for g in GROUPS], prec=4),
        fmt_row("direct send (s)", [table[g][1] for g in GROUPS], prec=4),
        "",
        f"real SPMD wall-clock at G=4 (128^2): swap {t_swap:.3f}s, "
        f"direct {t_direct:.3f}s",
    ]
    emit("ablation_compositing", lines)

    # binary swap's advantage grows with the group size — the reason the
    # renderer of [16] scales where direct send saturates its root node
    for g in (16, 32, 64):
        assert table[g][0] < table[g][1], g
    ratios = [table[g][1] / table[g][0] for g in GROUPS]
    assert ratios[-1] > ratios[0]
