"""Table 1 — compressed image sizes in bytes, with the real codecs.

Paper rows (turbulent-jet frames): Raw / LZO / BZIP / JPEG / JPEG+LZO /
JPEG+BZIP at 128², 256², 512², 1024².  We reproduce the table by running
our from-scratch codecs on really-rendered full-resolution jet frames.
Claims locked: JPEG dominates the lossless codecs; the two-phase
JPEG+LZO gains over JPEG alone; total reduction is "96% and up".
"""

from _util import emit, fmt_row, image_sizes

from repro.compress import get_codec, percent_reduction

PAPER = {  # bytes, from Table 1
    "raw": {128: 49152, 256: 196608, 512: 786432, 1024: 3145728},
    "lzo": {128: 16666, 256: 63386, 512: 235045, 1024: 848090},
    "bzip": {128: 12743, 256: 44867, 512: 152492, 1024: 482787},
    "jpeg": {128: 1509, 256: 3310, 512: 9184, 1024: 28764},
    "jpeg+lzo": {128: 1282, 256: 2667, 512: 6705, 1024: 18484},
    "jpeg+bzip": {128: 1642, 256: 3123, 512: 7131, 1024: 18252},
}
METHODS = ("raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip")


def compress_all(frames):
    sizes = {}
    for method in METHODS:
        codec = get_codec(method)
        sizes[method] = {
            s: len(codec.encode_image(frame)) for s, frame in frames.items()
        }
    return sizes


def test_table1_compressed_sizes(benchmark, jet_frames):
    sizes = benchmark.pedantic(compress_all, args=(jet_frames,), rounds=1, iterations=1)
    cols = list(image_sizes())

    lines = [
        "Table 1: compressed image sizes in bytes (measured | paper)",
        "",
        fmt_row("method \\ size", [f"{s}^2" for s in cols]),
    ]
    for method in METHODS:
        lines.append(
            fmt_row(
                method,
                [f"{sizes[method][s]}|{PAPER[method][s]}" for s in cols],
                width=16,
            )
        )
    reductions = [
        percent_reduction(sizes["raw"][s], sizes["jpeg+lzo"][s]) for s in cols
    ]
    lines.append("")
    lines.append(
        "JPEG+LZO reduction vs raw: "
        + ", ".join(f"{s}^2: {r:.1f}%" for s, r in zip(cols, reductions))
    )
    emit("table1_compression", lines)

    for s in cols:
        # column ordering of Table 1
        assert sizes["jpeg"][s] < sizes["bzip"][s] < sizes["lzo"][s] < sizes["raw"][s]
        # two-phase beats plain JPEG
        assert sizes["jpeg+lzo"][s] < sizes["jpeg"][s]
        # "The compression rates we have achieved are 96% and up"
        assert percent_reduction(sizes["raw"][s], sizes["jpeg+lzo"][s]) > 96.0
        # lossy sizes land within 3x of the paper's measurements
        assert sizes["jpeg"][s] < 3 * PAPER["jpeg"][s]
        assert sizes["jpeg+lzo"][s] < 3 * PAPER["jpeg+lzo"][s]
