"""Figure 10 — time to decompress all sub-images vs piece count, 512².

The parallel-compression transport ships each processor's strip as an
independently-compressed sub-image; the single O2 client then decodes
1..64 pieces.  Paper claims: "decompressing 2, 4, or 8 smaller sub-images
is faster than decompressing a single, larger image" and "the
decompression time increases significantly with 16 or more processors".

Two series: the calibrated O2 cost model (the paper's machine), and a
wall-clock measurement of our real codec on this machine (shape context;
a modern CPU has different cache behaviour, so only the model series is
asserted against the paper's dips).
"""

import time

import numpy as np
from _util import emit, fast_mode, fmt_row

from repro.compress import get_codec
from repro.render.image import split_tiles
from repro.sim.cluster import O2_CLIENT

PIECES = (1, 2, 4, 8, 16, 32, 64)
SIZE = 512


def model_series():
    px = SIZE * SIZE
    return {n: O2_CLIENT.costs.decompress_s(px, n) for n in PIECES}


def measured_series(frame):
    codec = get_codec("jpeg+lzo")
    out = {}
    for n in PIECES:
        payloads = [
            codec.encode_image(np.ascontiguousarray(strip))
            for _, strip in split_tiles(frame, n)
        ]
        t0 = time.perf_counter()
        for p in payloads:
            codec.decode_image(p)
        out[n] = time.perf_counter() - t0
    return out


def test_fig10_subimage_decompression(benchmark, jet_frames):
    frame = jet_frames[SIZE if not fast_mode() else max(jet_frames)]
    model = model_series()
    measured = benchmark.pedantic(
        measured_series, args=(frame,), rounds=1, iterations=1
    )

    lines = [
        "Figure 10: time to decompress all sub-images, 512x512 total (s)",
        "",
        fmt_row("pieces", list(PIECES)),
        fmt_row("O2 model (paper HW)", [model[n] for n in PIECES], prec=3),
        fmt_row("measured (this HW)", [measured[n] for n in PIECES], prec=3),
    ]
    emit("fig10_subimages", lines)

    # paper shape on the calibrated model:
    assert model[2] < model[1]
    assert model[4] < model[1]
    assert model[8] < model[1]
    assert model[16] > model[1]
    assert model[64] > model[16]
    # the real codec must at least show the >=16-piece overhead growth
    assert measured[64] > measured[4]
